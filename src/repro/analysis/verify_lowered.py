"""Cross-tier invariant checks: lowered words against the graph IR.

``verify_lowered_graph`` proves one :class:`_LoweredGraph` consistent with
the :class:`ProgramGraph` it claims to lower — without executing a word:

* the node and edge tables mirror the graph exactly (same nodes, same
  successor lists, same order);
* the frame plans (parameters, local arrays) match the graph signature;
* branch-counter coverage is exactly bijective with what
  :meth:`_LoweredGraph.resolve_counters` expects: the counted-edge set
  (every edge that is neither derived nor zero-class) is carried by branch
  words exactly once each, every fused op+jump word accounts for exactly
  one derived edge, and the profile-reconstruction tables (``_in_edges``,
  ``_derived_out``, ``_derived_in_count``, ``_edge_dst_idx``) cover every
  non-zero edge exactly once with consistent endpoints;
* all counted edges into one destination node branch to the same target
  word, and edges into the entry node target the entry word;
* when every graph node is reachable, every word is reachable in the
  reconstructed word CFG (dead words are how a mispatched successor
  reference shows up).

``verify_lowered_module`` runs the per-word layout checks
(:func:`repro.analysis.cfg.verify_words`) plus the cross-checks above for
every graph of a module, and is what the disk-cache load path runs under
``REPRO_VERIFY=1``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis import VerifyResult
from repro.analysis.cfg import (WordCFG, _is_degenerate_br, build_word_cfg,
                                dead_words, verify_words)
from repro.ir.values import VirtualReg
from repro.sim import engine as _eng

#: Opcodes that consume one derived (fall-through/jump) edge each.
_DERIVED_EDGE_OPS = frozenset({_eng.J, _eng.JB} | set(_eng._FUSED_FORM.values()))


def verify_graph(graph) -> VerifyResult:
    """Structural sanity of one :class:`ProgramGraph` (the reference tier).

    These are the properties every lowering tier assumes of a well-formed
    optimized benchmark graph; a malformed graph is still *loweable* (the
    lowerers emit error words), so violations here point at the optimizer,
    not the artifact.
    """
    result = VerifyResult()
    name = graph.name
    nodes = graph.nodes
    result.check(graph.entry in nodes, "graph-entry",
                 f"entry node {graph.entry!r} is not in the graph", name)
    for nid, node in nodes.items():
        for succ in node.succs:
            if not result.check(succ in nodes, "graph-edge",
                                f"node {nid} lists unknown successor "
                                f"{succ}", name):
                continue
            result.check(nid in nodes[succ].preds, "graph-edge-mirror",
                         f"edge {nid}->{succ} is missing from the "
                         f"successor's pred list", name)
        for pred in node.preds:
            if not result.check(pred in nodes, "graph-edge",
                                f"node {nid} lists unknown predecessor "
                                f"{pred}", name):
                continue
            result.check(nid in nodes[pred].succs, "graph-edge-mirror",
                         f"pred edge {pred}->{nid} is missing from the "
                         f"predecessor's succ list", name)
        if node.is_branch:
            result.check(len(node.succs) <= 2, "graph-branch-arity",
                         f"branch node {nid} has {len(node.succs)} "
                         f"successors", name)
        elif node.is_return:
            result.check(not node.succs, "graph-return-arity",
                         f"return node {nid} has successors", name)
        else:
            result.check(len(node.succs) == 1, "graph-fallthrough-arity",
                         f"node {nid} has {len(node.succs)} successors "
                         f"but no branch", name)
    return result


def verify_lowered_graph(graph, lg,
                         cfg: Optional[WordCFG] = None) -> VerifyResult:
    """Cross-check one lowered graph against its source program graph."""
    result = verify_words(lg)
    name = lg.name
    result.check(lg.name == graph.name, "graph-name",
                 f"lowered graph is named {lg.name!r}, source graph "
                 f"{graph.name!r}", name)

    node_ids = list(graph.nodes)
    idx_of = {nid: i for i, nid in enumerate(node_ids)}
    result.check(lg.node_ids == node_ids, "node-table",
                 "lowered node table does not match the graph's nodes "
                 "(count or order)", name)

    expected_edges = [(nid, succ) for nid in node_ids
                      for succ in graph.nodes[nid].succs]
    if not result.check(
            list(lg.edge_pairs) == expected_edges, "edge-table",
            f"lowered edge table has {len(lg.edge_pairs)} edges, the graph "
            f"implies {len(expected_edges)} (or the order differs)", name):
        # Everything below indexes edge_pairs; bail out on a broken table.
        return result
    n_edges = len(lg.edge_pairs)
    n_nodes = len(node_ids)

    # -- frame plans ---------------------------------------------------------------
    result.check(lg.n_params == len(graph.params), "param-count",
                 f"n_params={lg.n_params}, graph has {len(graph.params)} "
                 f"parameters", name)
    named = lg.n_regs - 1 - lg.scratch_watermark
    if result.check(len(lg.param_plan) == len(graph.params), "param-plan",
                    f"parameter plan covers {len(lg.param_plan)} of "
                    f"{len(graph.params)} parameters", name):
        for (is_reg, slot, pname), param in zip(lg.param_plan,
                                                graph.params):
            want_reg = isinstance(param, VirtualReg)
            result.check(
                is_reg == want_reg and pname == param.name,
                "param-plan",
                f"plan entry {pname!r} disagrees with parameter "
                f"{param.name!r}", name)
            limit = named if is_reg else lg.n_arrays - 1
            result.check((1 if is_reg else 0) <= slot <= limit,
                         "param-plan",
                         f"parameter {pname!r} slot {slot} is outside the "
                         f"frame", name)
    plan_names = [symbol.name for _, symbol in lg.local_plan]
    graph_locals = [symbol.name for symbol in graph.local_arrays]
    result.check(plan_names == graph_locals, "local-plan",
                 f"local-array plan {plan_names} does not match graph "
                 f"locals {graph_locals}", name)

    # -- entry ---------------------------------------------------------------------
    want_entry_idx = idx_of.get(graph.entry, -1)
    result.check(lg.entry_idx == want_entry_idx, "entry-index",
                 f"entry_idx={lg.entry_idx}, graph entry implies "
                 f"{want_entry_idx}", name)
    result.check((lg.entry_word is None) == (want_entry_idx < 0),
                 "entry-ref",
                 "entry word presence disagrees with the entry node", name)

    # -- counters and profile tables -----------------------------------------------
    result.check(lg.n_counters >= n_nodes, "counter-count",
                 f"n_counters={lg.n_counters} is below the node count "
                 f"{n_nodes}", name)
    tables_ok = result.check(
        len(lg._in_edges) == lg.n_counters
        and len(lg._derived_out) == lg.n_counters
        and len(lg._derived_in_count) == lg.n_counters
        and len(lg._edge_dst_idx) == n_edges,
        "profile-tables",
        "profile-reconstruction tables are mis-sized", name)
    if not tables_ok:
        return result

    zero: Set[int] = set()
    for e, dst_idx in enumerate(lg._edge_dst_idx):
        if dst_idx == -1:
            zero.add(e)
            continue
        if not result.check(0 <= dst_idx < lg.n_counters, "edge-dst",
                            f"edge {e} feeds counter {dst_idx}, outside "
                            f"[0, {lg.n_counters})", name):
            continue
        dst_nid = lg.edge_pairs[e][1]
        if dst_nid in idx_of:
            result.check(dst_idx == idx_of[dst_nid], "edge-dst",
                         f"edge {e} -> node {dst_nid} feeds counter "
                         f"{dst_idx}, expected {idx_of[dst_nid]}", name)
        else:
            result.check(n_nodes <= dst_idx < lg.n_counters, "edge-dst",
                         f"dangling edge {e} must feed a stub counter, "
                         f"feeds {dst_idx}", name)

    dangling = {dst for (src, dst) in lg.edge_pairs if dst not in idx_of}
    resolved_dangling = {lg.edge_pairs[e][1]
                         for e, d in enumerate(lg._edge_dst_idx)
                         if d != -1 and lg.edge_pairs[e][1] not in idx_of}
    result.check(lg.n_counters - n_nodes == len(resolved_dangling),
                 "stub-counters",
                 f"{lg.n_counters - n_nodes} stub counters for "
                 f"{len(resolved_dangling)} dangling targets "
                 f"({len(dangling)} total dangling)", name)

    derived: Set[int] = set()
    derived_dup = False
    for i, out in enumerate(lg._derived_out):
        for e in out:
            if not result.check(0 <= e < n_edges, "derived-edge",
                                f"derived edge {e} out of range", name):
                continue
            if e in derived:
                derived_dup = True
            derived.add(e)
            if i < n_nodes:
                result.check(lg.edge_pairs[e][0] == node_ids[i],
                             "derived-edge",
                             f"edge {e} listed as derived output of node "
                             f"{node_ids[i]}, but its source is "
                             f"{lg.edge_pairs[e][0]}", name)
            else:
                result.check(False, "derived-edge",
                             f"stub counter {i} lists derived output "
                             f"edges", name)
    result.check(not derived_dup, "derived-edge",
                 "an edge appears in more than one derived-output list",
                 name)
    result.check(not (derived & zero), "edge-class",
                 "an edge is both zero-class and derived", name)
    counted = set(range(n_edges)) - zero - derived

    flat_in = [e for lst in lg._in_edges for e in lst]
    result.check(sorted(flat_in) == sorted(set(range(n_edges)) - zero),
                 "in-edge-cover",
                 "in-edge lists do not cover every non-zero edge exactly "
                 "once", name)
    for i, lst in enumerate(lg._in_edges):
        for e in lst:
            if 0 <= e < n_edges:
                result.check(lg._edge_dst_idx[e] == i, "in-edge-cover",
                             f"edge {e} is listed as an in-edge of "
                             f"counter {i} but feeds "
                             f"{lg._edge_dst_idx[e]}", name)
    for i in range(lg.n_counters):
        want = sum(1 for e in derived
                   if 0 <= e < n_edges and lg._edge_dst_idx[e] == i)
        result.check(lg._derived_in_count[i] == want, "derived-in-count",
                     f"counter {i} expects {lg._derived_in_count[i]} "
                     f"derived in-edges, the tables imply {want}", name)

    # -- counter coverage: branch words vs. the counted-edge set -------------------
    br_counters: List[int] = []
    target_of: Dict[int, list] = {}
    jump_words = 0
    for word in lg.words:
        if not isinstance(word, list) or not word:
            continue
        if word[0] in _DERIVED_EDGE_OPS:
            jump_words += 1
        if word[0] != _eng.BR or len(word) != 6:
            continue
        legs = [(word[2], word[3])]
        if not _is_degenerate_br(word):
            legs.append((word[4], word[5]))
        for e, target in legs:
            br_counters.append(e)
            if not (isinstance(e, int) and 0 <= e < n_edges):
                continue
            dst_idx = lg._edge_dst_idx[e]
            prev = target_of.setdefault(dst_idx, target)
            result.check(prev is target, "branch-target",
                         f"counted edges into counter {dst_idx} branch to "
                         f"different target words", name)
    result.check(
        sorted(br_counters) == sorted(counted), "counter-coverage",
        f"branch words carry counters {sorted(br_counters)}, the edge "
        f"classes imply {sorted(counted)} — coverage is not bijective",
        name)
    result.check(jump_words == len(derived), "fused-edge-count",
                 f"{jump_words} jump/fused words for {len(derived)} "
                 f"derived edges", name)
    if lg.entry_idx in target_of and lg.entry_word is not None:
        result.check(target_of[lg.entry_idx] is lg.entry_word,
                     "branch-target",
                     "counted edges into the entry node do not target the "
                     "entry word", name)

    # -- dead words ----------------------------------------------------------------
    reachable_nodes = graph.reachable() if graph.entry in graph.nodes \
        else set()
    if set(node_ids) == set(reachable_nodes):
        if cfg is None:
            cfg = build_word_cfg(lg)
        dead = dead_words(lg, cfg)
        result.check(
            not dead, "dead-word",
            f"words {dead[:6]} are unreachable from the entry word "
            f"although every graph node is reachable", name)
    return result


def verify_lowered_module(module, lowered) -> VerifyResult:
    """Verify every lowered graph of *module* (the ``bytecode`` tier)."""
    result = VerifyResult()
    graphs = getattr(lowered, "graphs", lowered)
    result.check(set(graphs) == set(module.graphs), "graph-table",
                 f"lowered module covers graphs {sorted(graphs)}, the "
                 f"module defines {sorted(module.graphs)}")
    for gname in sorted(set(graphs) & set(module.graphs)):
        result.merge(verify_lowered_graph(module.graphs[gname],
                                          graphs[gname]))
    return result


def verify_compiled_module(module, compiled) -> VerifyResult:
    """Verify a :class:`CompiledModule` (the ``compiled`` closure tier).

    The closures themselves are opaque, but the tables around them are
    not: node/edge tables must mirror the graph exactly as in the
    bytecode tier, every edge destination must land on a real step (or a
    dangling-target stub appended past the node steps), and the entry
    index must point at the entry node.
    """
    result = VerifyResult()
    result.check(set(compiled.graphs) == set(module.graphs), "graph-table",
                 f"compiled module covers graphs "
                 f"{sorted(compiled.graphs)}, the module defines "
                 f"{sorted(module.graphs)}")
    for gname in sorted(set(compiled.graphs) & set(module.graphs)):
        graph = module.graphs[gname]
        cg = compiled.graphs[gname]
        result.check(cg.node_ids == list(graph.nodes), "node-table",
                     "compiled node table does not mirror the graph's "
                     "node order", gname)
        expected_pairs = [(nid, succ) for nid in cg.node_ids
                          if nid in graph.nodes
                          for succ in graph.nodes[nid].succs]
        result.check(cg.edge_pairs == expected_pairs, "edge-table",
                     "compiled edge table does not mirror the graph's "
                     "edges", gname)
        result.check(len(cg.edge_dst) == len(cg.edge_pairs),
                     "profile-tables",
                     f"{len(cg.edge_dst)} edge destinations for "
                     f"{len(cg.edge_pairs)} edges", gname)
        n_steps = len(cg.steps)
        result.check(n_steps >= len(cg.node_ids), "node-table",
                     f"{n_steps} steps for {len(cg.node_ids)} nodes",
                     gname)
        result.check(all(callable(step) for step in cg.steps),
                     "step-table", "non-callable entry in the compiled "
                     "step table", gname)
        result.check(
            all(0 <= dst < n_steps for dst in cg.edge_dst),
            "edge-dst", "compiled edge destination outside the step "
            "table", gname)
        idx_of = {nid: i for i, nid in enumerate(cg.node_ids)}
        result.check(cg.entry_idx == idx_of.get(graph.entry, -1),
                     "entry-index",
                     f"compiled entry index {cg.entry_idx} does not "
                     f"match the graph entry", gname)
        result.check(cg.n_params == len(graph.params), "param-count",
                     f"compiled arity {cg.n_params} != "
                     f"{len(graph.params)} graph params", gname)
    return result
