"""AST determinism lint over the simulator and executor sources.

The whole stack's contract is bit-identical results across tiers, across
``jobs=N``, and across processes.  Python's ``set`` iteration order is
randomized per process (hash randomization of ``str`` keys), so a single
``for x in some_set:`` in a code path that shapes an emitted artifact or
assembles results silently breaks that contract — rarely, and only
across interpreter runs, which is the worst kind of flake.

This lint walks ``sim/`` and ``exec/`` source with :mod:`ast` and flags:

* iteration over a set-typed expression — a ``set``/``frozenset`` literal
  or comprehension, a ``set(...)`` call, a set-operator combination of
  those, or a local name only ever bound to such expressions — via
  ``for``, a comprehension generator, ``*`` unpacking, or an ordering-
  sensitive consumer (``list``/``tuple``/``enumerate``/``reversed``/
  ``iter``/``join``);
* ``.pop()`` with no arguments on a set-typed name (pops an arbitrary
  element);
* filesystem enumeration (``os.listdir``/``os.scandir``, ``Path.glob``/
  ``rglob``/``iterdir``) used directly as an iteration source — the OS
  returns entries in on-disk order — without a ``sorted(...)`` wrapper.

Order-insensitive consumers (``sorted``, ``min``, ``max``, ``len``,
``any``, ``all``, ``sum``, ``set``, ``frozenset``, membership tests) are
fine and not flagged.  A line ending in ``# lint: ordered`` asserts the
iteration is deliberately order-independent and suppresses the finding.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.analysis import VerifyResult

#: Builtins whose result does not depend on the argument's iteration order.
_ORDER_FREE = frozenset({
    "sorted", "min", "max", "len", "any", "all", "sum", "set",
    "frozenset",
})

#: Builtins that materialize or expose their argument's iteration order.
_ORDER_SENSITIVE = frozenset({
    "list", "tuple", "enumerate", "reversed", "iter",
})

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

_FS_CALLS = frozenset({"listdir", "scandir"})
_FS_METHODS = frozenset({"glob", "rglob", "iterdir", "scandir"})


def _collect_set_names(body: Sequence[ast.stmt],
                       inherited: Set[str]) -> Set[str]:
    """Names in this scope bound *only* to set-typed expressions."""
    assigned: Dict[str, List[ast.expr]] = {}

    def record(target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            assigned.setdefault(target.id, []).append(value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    assigned.setdefault(elt.id, []).append(None)

    for stmt in _scope_statements(body):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                record(target, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            record(stmt.target, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            record(stmt.target, None)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            record(stmt.target, None)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                if item.optional_vars is not None:
                    record(item.optional_vars, None)

    # Two rounds so ``a = set(); b = a`` resolves.
    names = set(inherited)
    for _ in range(2):
        resolved = set()
        for name, values in assigned.items():
            if name and values and all(
                    v is not None and _is_set_expr(v, names)
                    for v in values):
                resolved.add(name)
        names = (inherited - set(assigned)) | resolved
    return names


def _scope_statements(body: Sequence[ast.stmt]) -> Iterable[ast.stmt]:
    """All statements in a scope, not descending into nested defs."""
    stack = list(body)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        for field in ("body", "orelse", "finalbody"):
            stack.extend(getattr(stmt, field, ()) or ())
        for handler in getattr(stmt, "handlers", ()) or ():
            stack.extend(handler.body)


def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("union", "intersection",
                                       "difference",
                                       "symmetric_difference") \
                and _is_set_expr(node.func.value, set_names):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return (_is_set_expr(node.left, set_names)
                or _is_set_expr(node.right, set_names))
    if isinstance(node, ast.IfExp):
        return (_is_set_expr(node.body, set_names)
                and _is_set_expr(node.orelse, set_names))
    return False


def _is_fs_enumeration(node: ast.expr) -> bool:
    """``os.listdir(..)`` / ``p.glob(..)``-style unordered fs listing."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr in _FS_CALLS and isinstance(func.value, ast.Name) \
                and func.value.id == "os":
            return True
        if func.attr in _FS_METHODS:
            return True
    if isinstance(func, ast.Name) and func.id in _FS_CALLS:
        return True
    return False


class _ScopeLinter:
    def __init__(self, filename: str, lines: Sequence[str],
                 result: VerifyResult):
        self.filename = filename
        self.lines = lines
        self.result = result
        #: comprehensions passed straight into an order-free consumer
        #: (``sorted(p for p in root.glob(..))``) — their internal
        #: iteration order cannot leak, so they are not findings
        self._neutral: Set[int] = set()

    def _suppressed(self, node: ast.AST) -> bool:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return "# lint: ordered" in self.lines[line - 1]
        return False

    def _flag(self, node: ast.AST, invariant: str, what: str) -> None:
        # a ``# lint: ordered`` annotation turns the finding into a
        # passed check — the iteration is asserted order-independent
        self.result.check(
            self._suppressed(node), invariant,
            f"{self.filename}:{getattr(node, 'lineno', 0)}: {what}")

    def lint_scope(self, body: Sequence[ast.stmt],
                   inherited: Set[str]) -> None:
        set_names = _collect_set_names(body, inherited)
        for stmt in _scope_statements(body):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                self.lint_scope(stmt.body, set_names)
                continue
            for node in self._scope_walk(stmt):
                self._lint_node(node, set_names)

    def _scope_walk(self, stmt: ast.stmt) -> Iterable[ast.AST]:
        """Walk one statement's expressions, not nested statements or
        nested scopes (those are visited by ``lint_scope``)."""
        skip_fields = {"body", "orelse", "finalbody", "handlers"}
        stack: List[ast.AST] = []
        for field, value in ast.iter_fields(stmt):
            if field in skip_fields:
                continue
            if isinstance(value, ast.AST):
                stack.append(value)
            elif isinstance(value, list):
                stack.extend(v for v in value if isinstance(v, ast.AST))
        yield stmt
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _lint_node(self, node: ast.AST, set_names: Set[str]) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._check_iter_source(node.iter, node, set_names)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            if isinstance(node, ast.SetComp) \
                    or id(node) in self._neutral:
                return  # result (or consumer) is order-free
            for gen in node.generators:
                self._check_iter_source(gen.iter, node, set_names)
        elif isinstance(node, ast.Starred):
            if _is_set_expr(node.value, set_names):
                self._flag(node, "unordered-set-iteration",
                           "unpacking a set with '*' exposes arbitrary "
                           "order")
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _ORDER_FREE:
                self._neutral.update(id(arg) for arg in node.args)
            if isinstance(func, ast.Name) \
                    and func.id in _ORDER_SENSITIVE and node.args \
                    and _is_set_expr(node.args[0], set_names):
                self._flag(node, "unordered-set-iteration",
                           f"{func.id}() over a set exposes arbitrary "
                           f"order")
            elif isinstance(func, ast.Attribute) \
                    and func.attr == "join" and node.args \
                    and _is_set_expr(node.args[0], set_names):
                self._flag(node, "unordered-set-iteration",
                           "str.join over a set exposes arbitrary order")
            elif isinstance(func, ast.Attribute) \
                    and func.attr == "pop" and not node.args \
                    and _is_set_expr(func.value, set_names):
                self._flag(node, "unordered-set-iteration",
                           "set.pop() removes an arbitrary element")

    def _check_iter_source(self, source: ast.expr, node: ast.AST,
                           set_names: Set[str]) -> None:
        if _is_set_expr(source, set_names):
            self._flag(node, "unordered-set-iteration",
                       "iteration over a set has arbitrary order")
        elif _is_fs_enumeration(source):
            self._flag(node, "unordered-fs-iteration",
                       "filesystem enumeration is in on-disk order; "
                       "wrap in sorted(...)")


def lint_source(filename: str, source: str,
                result: VerifyResult) -> VerifyResult:
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        result.check(False, "lint-parse", f"{filename}: {exc}")
        return result
    lines = source.splitlines()
    _ScopeLinter(filename, lines, result).lint_scope(tree.body, set())
    result.checks += 1  # the file-level sweep itself
    return result


def lint_paths(paths: Iterable[str]) -> VerifyResult:
    """Lint every ``.py`` file under *paths* (files or directories)."""
    result = VerifyResult()
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                files.extend(os.path.join(root, name)
                             for name in names if name.endswith(".py"))
        else:
            files.append(path)
    for path in sorted(files):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        rel = os.path.relpath(path)
        lint_source(rel, source, result)
    return result


def default_lint_paths() -> List[str]:
    """The artifact-shaping packages the repo holds to the lint:
    ``sim/`` (emitters, caches), ``exec/`` (result assembly), ``serve/``
    (request dedup and cache tiers) and ``analysis/`` (verifiers and the
    range analyzer — their reports and certificates must be stable)."""
    import repro.analysis
    import repro.exec
    import repro.serve
    import repro.sim
    return [os.path.dirname(repro.sim.__file__),
            os.path.dirname(repro.exec.__file__),
            os.path.dirname(repro.serve.__file__),
            os.path.dirname(repro.analysis.__file__)]


def lint_determinism() -> VerifyResult:
    return lint_paths(default_lint_paths())
