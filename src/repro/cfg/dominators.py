"""Dominator computation (Cooper–Harvey–Kennedy iterative algorithm).

Needed by natural-loop detection, which loop pipelining builds on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cfg.graph import ProgramGraph


def immediate_dominators(graph: ProgramGraph) -> Dict[int, Optional[int]]:
    """Map node id -> immediate dominator id (entry maps to None)."""
    order = graph.rpo_order()
    index = {nid: i for i, nid in enumerate(order)}
    idom: Dict[int, Optional[int]] = {graph.entry: graph.entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for nid in order:
            if nid == graph.entry:
                continue
            preds = [p for p in graph.nodes[nid].preds if p in idom]
            if not preds:
                continue
            new_idom = preds[0]
            for p in preds[1:]:
                new_idom = intersect(new_idom, p)
            if idom.get(nid) != new_idom:
                idom[nid] = new_idom
                changed = True
    result: Dict[int, Optional[int]] = {}
    for nid in graph.nodes:
        if nid == graph.entry:
            result[nid] = None
        else:
            result[nid] = idom.get(nid)
    return result


def compute_dominators(graph: ProgramGraph) -> Dict[int, Set[int]]:
    """Map node id -> the full set of its dominators (including itself)."""
    idom = immediate_dominators(graph)
    doms: Dict[int, Set[int]] = {}
    for nid in graph.nodes:
        chain: Set[int] = set()
        cur: Optional[int] = nid
        while cur is not None:
            chain.add(cur)
            cur = idom[cur]
        doms[nid] = chain
    return doms


def dominates(doms: Dict[int, Set[int]], a: int, b: int) -> bool:
    """True when node *a* dominates node *b*."""
    return a in doms[b]
