"""Natural-loop detection on program graphs.

A natural loop is identified by a back edge ``latch -> header`` where the
header dominates the latch; its body is every node that can reach the latch
without passing through the header.  Loop pipelining (:mod:`repro.opt.looppipe`)
unrolls these bodies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.cfg.dominators import compute_dominators
from repro.cfg.graph import ProgramGraph


@dataclass
class NaturalLoop:
    """One natural loop."""

    header: int
    latches: List[int]
    body: Set[int] = field(default_factory=set)

    @property
    def size(self) -> int:
        return len(self.body)

    def exits(self, graph: ProgramGraph) -> List[int]:
        """Nodes outside the loop reached by edges from inside it."""
        outside: List[int] = []
        for nid in self.body:
            for succ in graph.nodes[nid].succs:
                if succ not in self.body and succ not in outside:
                    outside.append(succ)
        return outside

    def contains_call(self, graph: ProgramGraph) -> bool:
        from repro.ir.ops import Op
        for nid in self.body:
            for ins in graph.nodes[nid].ops:
                if ins.op is Op.CALL:
                    return True
        return False

    def is_innermost(self, loops: List["NaturalLoop"]) -> bool:
        for other in loops:
            if other is self:
                continue
            if other.header in self.body and other.header != self.header:
                return False
        return True


def find_natural_loops(graph: ProgramGraph) -> List[NaturalLoop]:
    """All natural loops, loops sharing a header merged, inner loops first."""
    doms = compute_dominators(graph)
    by_header: Dict[int, NaturalLoop] = {}
    for tail, head in graph.back_edges():
        if head not in doms[tail]:
            continue  # irreducible: not a natural loop, skip
        loop = by_header.setdefault(head, NaturalLoop(head, []))
        loop.latches.append(tail)
        loop.body |= _loop_body(graph, head, tail)
    loops = list(by_header.values())
    loops.sort(key=lambda lp: lp.size)
    return loops


def _loop_body(graph: ProgramGraph, header: int, latch: int) -> Set[int]:
    body = {header, latch}
    stack = [latch]
    while stack:
        nid = stack.pop()
        if nid == header:
            continue
        for pred in graph.nodes[nid].preds:
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body
