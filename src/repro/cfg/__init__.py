"""Program graphs and the analyses defined over them.

The *program graph* is the representation the optimizer and the sequence
analyzer work on: a directed graph whose nodes each hold a set of operations
that execute in the same machine cycle (VLIW semantics: all operations in a
node read their sources at the start of the cycle and write results at the
end).  A freshly built graph has one operation per node — the sequential
schedule implied by the source program; percolation scheduling then compacts
it.
"""

from repro.cfg.graph import Node, ProgramGraph
from repro.cfg.build import build_graph, build_module_graphs
from repro.cfg.dataflow import LivenessInfo, compute_liveness, reaching_uses
from repro.cfg.dominators import compute_dominators, immediate_dominators
from repro.cfg.loops import NaturalLoop, find_natural_loops
from repro.cfg.linearize import linearize, format_graph, schedule_stats

__all__ = [
    "Node",
    "ProgramGraph",
    "build_graph",
    "build_module_graphs",
    "LivenessInfo",
    "compute_liveness",
    "reaching_uses",
    "compute_dominators",
    "immediate_dominators",
    "NaturalLoop",
    "find_natural_loops",
    "linearize",
    "format_graph",
    "schedule_stats",
]
