"""The program graph: VLIW nodes connected by control-flow edges.

Execution semantics of one :class:`Node` (one machine cycle):

1. every operation in ``node.ops`` and the optional ``node.control``
   instruction read their source registers *simultaneously* at the start of
   the cycle (so operations within a node never see each other's results);
2. all destination registers are written at the end of the cycle;
3. control transfers along one outgoing edge: branch nodes pick
   ``succs[0]`` (condition true) or ``succs[1]`` (false); other nodes have a
   single successor; return nodes have none.

These are exactly the semantics percolation scheduling is defined over, and
the reason chained sequences must span *consecutive* nodes: two dependent
operations can never share a cycle without chaining hardware — which is the
hardware extension the analysis is hunting for.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import IRError
from repro.ir.instr import Instruction
from repro.ir.ops import Op
from repro.ir.values import VirtualReg


class Node:
    """One VLIW cycle: parallel operations plus optional control."""

    __slots__ = ("id", "ops", "control", "succs", "preds")

    def __init__(self, node_id: int):
        self.id = node_id
        self.ops: List[Instruction] = []
        # BR or RET instruction, executed in parallel with ops.
        self.control: Optional[Instruction] = None
        self.succs: List[int] = []
        self.preds: List[int] = []

    # -- classification -----------------------------------------------------------

    @property
    def is_branch(self) -> bool:
        return self.control is not None and self.control.op is Op.BR

    @property
    def is_return(self) -> bool:
        return self.control is not None and self.control.op is Op.RET

    @property
    def is_empty(self) -> bool:
        return not self.ops and self.control is None

    # -- dataflow summary -----------------------------------------------------------

    def all_instructions(self) -> Iterator[Instruction]:
        yield from self.ops
        if self.control is not None:
            yield self.control

    def uses(self) -> Set[VirtualReg]:
        used: Set[VirtualReg] = set()
        for ins in self.all_instructions():
            used.update(ins.uses())
        return used

    def defs(self) -> Set[VirtualReg]:
        defined: Set[VirtualReg] = set()
        for ins in self.ops:
            defined.update(ins.defs())
        return defined

    def __repr__(self) -> str:
        parts = [str(op) for op in self.ops]
        if self.control is not None:
            parts.append(str(self.control))
        body = "; ".join(parts) if parts else "<empty>"
        return f"<Node {self.id}: {body} -> {self.succs}>"


class ProgramGraph:
    """A function in program-graph form."""

    def __init__(self, name: str, params=(), local_arrays=(),
                 return_type: str = "void"):
        self.name = name
        self.params = list(params)
        self.local_arrays = list(local_arrays)
        self.return_type = return_type
        self.nodes: Dict[int, Node] = {}
        self.entry: Optional[int] = None
        self._ids = itertools.count(0)
        self._temp_ids = itertools.count(0)

    # -- construction ---------------------------------------------------------------

    def new_node(self) -> Node:
        node = Node(next(self._ids))
        self.nodes[node.id] = node
        return node

    def new_temp(self, is_float: bool = False) -> VirtualReg:
        """Fresh register for renaming transformations (``r0``, ``r1``...)."""
        prefix = "fr" if is_float else "r"
        return VirtualReg(f"%{prefix}{next(self._temp_ids)}", is_float)

    def add_edge(self, src: int, dst: int) -> None:
        self.nodes[src].succs.append(dst)
        self.nodes[dst].preds.append(src)

    def remove_edge(self, src: int, dst: int) -> None:
        self.nodes[src].succs.remove(dst)
        self.nodes[dst].preds.remove(src)

    def redirect_edge(self, src: int, old_dst: int, new_dst: int) -> None:
        """Replace the edge src->old_dst with src->new_dst (position kept,
        so a branch keeps its true/false slot)."""
        succs = self.nodes[src].succs
        succs[succs.index(old_dst)] = new_dst
        self.nodes[old_dst].preds.remove(src)
        self.nodes[new_dst].preds.append(src)

    def remove_node(self, node_id: int) -> None:
        node = self.nodes[node_id]
        if node.preds or node.succs:
            raise IRError(f"cannot remove connected node {node_id}")
        if self.entry == node_id:
            raise IRError("cannot remove the entry node")
        del self.nodes[node_id]

    # -- traversal ------------------------------------------------------------------

    def successors(self, node_id: int) -> List[int]:
        return list(self.nodes[node_id].succs)

    def predecessors(self, node_id: int) -> List[int]:
        return list(self.nodes[node_id].preds)

    def reachable(self) -> Set[int]:
        """Node ids reachable from the entry."""
        seen: Set[int] = set()
        stack = [self.entry]
        while stack:
            nid = stack.pop()
            if nid in seen or nid is None:
                continue
            seen.add(nid)
            stack.extend(self.nodes[nid].succs)
        return seen

    def prune_unreachable(self) -> int:
        """Delete unreachable nodes; returns how many were removed."""
        keep = self.reachable()
        dead = [nid for nid in self.nodes if nid not in keep]
        for nid in dead:
            node = self.nodes[nid]
            for succ in list(node.succs):
                if succ in self.nodes:
                    self.nodes[succ].preds = [
                        p for p in self.nodes[succ].preds if p != nid]
            del self.nodes[nid]
        for node in self.nodes.values():
            node.preds = [p for p in node.preds if p in keep]
        return len(dead)

    def rpo_order(self) -> List[int]:
        """Reverse postorder from the entry (forward dataflow order)."""
        seen: Set[int] = set()
        order: List[int] = []

        def visit(nid: int) -> None:
            stack = [(nid, iter(self.nodes[nid].succs))]
            seen.add(nid)
            while stack:
                cur, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.nodes[succ].succs)))
                        advanced = True
                        break
                if not advanced:
                    order.append(cur)
                    stack.pop()

        visit(self.entry)
        return list(reversed(order))

    def back_edges(self) -> List[Tuple[int, int]]:
        """Edges (tail, head) where head is an ancestor in the DFS tree."""
        color: Dict[int, int] = {}
        result: List[Tuple[int, int]] = []
        stack: List[Tuple[int, Iterator[int]]] = [
            (self.entry, iter(self.nodes[self.entry].succs))]
        color[self.entry] = 1
        while stack:
            nid, it = stack[-1]
            advanced = False
            for succ in it:
                if color.get(succ, 0) == 1:
                    result.append((nid, succ))
                elif color.get(succ, 0) == 0:
                    color[succ] = 1
                    stack.append((succ, iter(self.nodes[succ].succs)))
                    advanced = True
                    break
            if not advanced:
                color[nid] = 2
                stack.pop()
        return result

    # -- queries ----------------------------------------------------------------------

    def instruction_count(self) -> int:
        return sum(len(n.ops) + (1 if n.control else 0)
                   for n in self.nodes.values())

    def op_count(self) -> int:
        return sum(len(n.ops) for n in self.nodes.values())

    def node_count(self) -> int:
        return len(self.nodes)

    def registers(self) -> Set[VirtualReg]:
        regs: Set[VirtualReg] = set(
            p for p in self.params if isinstance(p, VirtualReg))
        for node in self.nodes.values():
            for ins in node.all_instructions():
                regs.update(ins.defs())
                regs.update(ins.uses())
        return regs

    def find_array(self, name: str):
        for arr in self.local_arrays:
            if arr.name == name:
                return arr
        for p in self.params:
            if not isinstance(p, VirtualReg) and p.name == name:
                return p
        return None

    def copy(self) -> "ProgramGraph":
        """Deep-copy the graph (instructions cloned, provenance preserved)."""
        dup = ProgramGraph(self.name, self.params, self.local_arrays,
                           self.return_type)
        dup._ids = itertools.count(max(self.nodes) + 1 if self.nodes else 0)
        dup._temp_ids = itertools.count(0)
        for nid, node in self.nodes.items():
            twin = Node(nid)
            twin.ops = [op.clone() for op in node.ops]
            # clone() refreshes uids but keeps origins; for a plain graph
            # copy we want identical provenance, which clone provides.
            twin.control = node.control.clone() if node.control else None
            twin.succs = list(node.succs)
            twin.preds = list(node.preds)
            dup.nodes[nid] = twin
        dup.entry = self.entry
        return dup

    def __repr__(self) -> str:
        return (f"<ProgramGraph {self.name}: {self.node_count()} nodes, "
                f"{self.instruction_count()} instructions>")


class GraphModule:
    """A module whose functions are program graphs (post-CFG form)."""

    def __init__(self, name: str, graphs: Dict[str, ProgramGraph],
                 global_arrays, array_initializers, global_scalars):
        self.name = name
        self.graphs = graphs
        self.global_arrays = dict(global_arrays)
        self.array_initializers = dict(array_initializers)
        self.global_scalars = dict(global_scalars)

    @property
    def entry(self) -> ProgramGraph:
        try:
            return self.graphs["main"]
        except KeyError:
            raise IRError(f"graph module {self.name!r} has no main")

    def get_graph(self, name: str) -> ProgramGraph:
        try:
            return self.graphs[name]
        except KeyError:
            raise IRError(f"unknown function {name!r}")

    def total_nodes(self) -> int:
        return sum(g.node_count() for g in self.graphs.values())

    def copy(self) -> "GraphModule":
        return GraphModule(
            self.name,
            {name: g.copy() for name, g in self.graphs.items()},
            self.global_arrays,
            self.array_initializers,
            self.global_scalars,
        )

    def __getstate__(self):
        # The compiled-engine cache holds closures — and the codegen
        # cache exec-compiled function objects — which cannot cross a
        # pickle boundary (the study executor ships modules to worker
        # processes); the bytecode cache is dropped alongside them for
        # the same per-process-rebuild contract.  Each process
        # recompiles / re-lowers / regenerates on first run instead.
        state = self.__dict__.copy()
        state.pop("_compiled_cache", None)
        state.pop("_lowered_cache", None)
        state.pop("_codegen_cache", None)
        state.pop("_lanes_cache", None)
        return state

    def __repr__(self) -> str:
        return (f"<GraphModule {self.name}: {len(self.graphs)} graphs, "
                f"{self.total_nodes()} nodes>")
