"""Build a program graph from linear three-address code.

The initial graph carries **one operation per node** — the fully sequential
schedule.  Jumps dissolve into edges; labels become join points.  This is the
level-0 ("no optimization") program graph of the paper: sequence detection on
it sees only source-order adjacencies, like the prior work the paper compares
against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import IRError
from repro.cfg.graph import GraphModule, Node, ProgramGraph
from repro.ir.function import Function
from repro.ir.instr import Instruction
from repro.ir.module import Module
from repro.ir.ops import Op
from repro.ir.values import Label


def build_graph(fn: Function) -> ProgramGraph:
    """Convert one linear function into its sequential program graph."""
    graph = ProgramGraph(fn.name, fn.params, fn.local_arrays, fn.return_type)
    body = fn.body
    if not body:
        raise IRError(f"cannot build a graph for empty function {fn.name!r}")

    # Pass 1: label name -> body index.
    label_pos: Dict[str, int] = {}
    for i, item in enumerate(body):
        if isinstance(item, Label):
            label_pos[item.name] = i

    # Pass 2: resolve a body position to the next node-producing
    # instruction, following jumps through.
    def resolve(pos: int, trail: Optional[set] = None) -> int:
        trail = trail or set()
        while True:
            if pos in trail:
                raise IRError(f"{fn.name}: empty infinite jump cycle")
            trail.add(pos)
            if pos >= len(body):
                raise IRError(f"{fn.name}: control flows off the end")
            item = body[pos]
            if isinstance(item, Label):
                pos += 1
                continue
            if item.op is Op.JMP:
                pos = label_pos[item.true_label]
                continue
            return pos

    # Pass 3: create one node per non-jump instruction.  Instructions are
    # cloned so the graph owns its copies — later optimization must never
    # mutate the linear module (a fresh graph can then be built per
    # optimization level).  Clones keep their provenance ``origin``.
    node_at: Dict[int, Node] = {}
    for i, item in enumerate(body):
        if isinstance(item, Label) or item.op is Op.JMP:
            continue
        node = graph.new_node()
        if item.op in (Op.BR, Op.RET):
            node.control = item.clone()
        else:
            node.ops.append(item.clone())
        node_at[i] = node

    # Pass 4: edges.
    positions = sorted(node_at)
    for i in positions:
        node = node_at[i]
        ins = body[i]
        if ins.op is Op.RET:
            continue
        if ins.op is Op.BR:
            true_node = node_at[resolve(label_pos[ins.true_label])]
            false_node = node_at[resolve(label_pos[ins.false_label])]
            graph.add_edge(node.id, true_node.id)
            graph.add_edge(node.id, false_node.id)
            continue
        # Fallthrough to the next producing position.
        target = node_at[resolve(i + 1)]
        graph.add_edge(node.id, target.id)

    graph.entry = node_at[resolve(0)].id
    graph.prune_unreachable()
    return graph


def build_module_graphs(module: Module) -> GraphModule:
    """Convert every function of *module* into program-graph form."""
    graphs = {name: build_graph(fn) for name, fn in module.functions.items()}
    return GraphModule(module.name, graphs, module.global_arrays,
                       module.array_initializers, module.global_scalars)
