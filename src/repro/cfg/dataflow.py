"""Dataflow analyses over program graphs.

Liveness is the one that matters for percolation scheduling: an operation may
only be hoisted into a predecessor node if its destination register is dead
on every *other* path out of that predecessor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.cfg.graph import ProgramGraph
from repro.ir.instr import Instruction
from repro.ir.values import VirtualReg


@dataclass
class LivenessInfo:
    """live_in / live_out register sets per node id."""

    live_in: Dict[int, Set[VirtualReg]] = field(default_factory=dict)
    live_out: Dict[int, Set[VirtualReg]] = field(default_factory=dict)

    def is_live_in(self, node_id: int, reg: VirtualReg) -> bool:
        return reg in self.live_in.get(node_id, ())

    def is_live_out(self, node_id: int, reg: VirtualReg) -> bool:
        return reg in self.live_out.get(node_id, ())


def compute_liveness(graph: ProgramGraph) -> LivenessInfo:
    """Classic backward worklist liveness over VLIW nodes.

    Within a node all reads happen before all writes, so a register both
    read and written by the same node is *used* (its incoming value matters):
    ``use(n) = reads(n)``, ``def(n) = writes(n)``,
    ``live_in = use ∪ (live_out − def)``.
    """
    use: Dict[int, Set[VirtualReg]] = {}
    defs: Dict[int, Set[VirtualReg]] = {}
    for nid, node in graph.nodes.items():
        use[nid] = node.uses()
        defs[nid] = node.defs()

    info = LivenessInfo(
        live_in={nid: set() for nid in graph.nodes},
        live_out={nid: set() for nid in graph.nodes},
    )
    # Iterate to fixpoint; process in reverse RPO for fast convergence.
    order = list(reversed(graph.rpo_order()))
    changed = True
    while changed:
        changed = False
        for nid in order:
            node = graph.nodes[nid]
            out: Set[VirtualReg] = set()
            for succ in node.succs:
                out |= info.live_in[succ]
            new_in = use[nid] | (out - defs[nid])
            if out != info.live_out[nid]:
                info.live_out[nid] = out
                changed = True
            if new_in != info.live_in[nid]:
                info.live_in[nid] = new_in
                changed = True
    return info


def reaching_uses(graph: ProgramGraph,
                  ) -> Dict[int, List[Tuple[int, Instruction]]]:
    """For each node, the (node_id, instruction) pairs that read each def.

    Returns a map keyed by instruction ``uid`` of a defining instruction to
    the list of (node, instruction) sites that may consume its value along
    some path without an intervening redefinition.  Used by the sequence
    analyzer to find producer→consumer pairs beyond immediate neighbours and
    by tests as an oracle.
    """
    consumers: Dict[int, List[Tuple[int, Instruction]]] = {}
    for nid, node in graph.nodes.items():
        for ins in node.ops:
            if ins.dest is None:
                continue
            found = _collect_consumers(graph, nid, ins.dest)
            consumers[ins.uid] = found
    return consumers


def _collect_consumers(graph: ProgramGraph, start: int,
                       reg: VirtualReg) -> List[Tuple[int, Instruction]]:
    """Walk forward from *start* finding reads of *reg* before redefinition."""
    result: List[Tuple[int, Instruction]] = []
    seen: Set[int] = set()
    stack = list(graph.nodes[start].succs)
    while stack:
        nid = stack.pop()
        if nid in seen:
            continue
        seen.add(nid)
        node = graph.nodes[nid]
        for ins in node.all_instructions():
            if reg in ins.uses():
                result.append((nid, ins))
        if reg in node.defs():
            continue  # killed here; stop this path
        stack.extend(node.succs)
    return result
