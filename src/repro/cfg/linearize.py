"""Linearization and pretty-printing of program graphs.

``linearize`` produces a stable node order (reverse postorder) used for
display, golden tests and static statistics; ``schedule_stats`` summarizes a
graph as a schedule (node count, operation count, static ILP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cfg.graph import ProgramGraph


def linearize(graph: ProgramGraph) -> List[int]:
    """Return node ids in reverse postorder from the entry."""
    return graph.rpo_order()


def format_graph(graph: ProgramGraph) -> str:
    """Render the graph one node per block, ops indented."""
    lines = [f"graph {graph.name} (entry n{graph.entry})"]
    for nid in linearize(graph):
        node = graph.nodes[nid]
        succ = ", ".join(f"n{s}" for s in node.succs) or "-"
        lines.append(f"n{nid}: -> {succ}")
        for op in node.ops:
            lines.append(f"    {op}")
        if node.control is not None:
            lines.append(f"    {node.control}  [ctl]")
    return "\n".join(lines)


@dataclass
class ScheduleStats:
    """Static shape of a scheduled graph."""

    nodes: int
    operations: int
    controls: int
    max_width: int

    @property
    def static_ilp(self) -> float:
        """Average operations per node (cycle) in the static schedule."""
        if self.nodes == 0:
            return 0.0
        return self.operations / self.nodes


def schedule_stats(graph: ProgramGraph) -> ScheduleStats:
    """Compute static schedule statistics for *graph*."""
    ops = 0
    controls = 0
    width = 0
    for node in graph.nodes.values():
        ops += len(node.ops)
        width = max(width, len(node.ops))
        if node.control is not None:
            controls += 1
    return ScheduleStats(nodes=graph.node_count(), operations=ops,
                         controls=controls, max_width=width)
