"""One-call front end: mini-C source text to verified three-address module.

This is paper Figure 2, step 1 — the whole "modified gcc" stand-in::

    from repro.frontend import compile_source
    module = compile_source(open("fir.c").read(), name="fir")
"""

from __future__ import annotations

from repro.ir.module import Module
from repro.ir.verify import verify_module
from repro.lang.parser import parse
from repro.lang.sema import analyze
from repro.lowering.lower import lower_program


def compile_source(source: str, name: str = "<module>",
                   filename: str = "<source>") -> Module:
    """Compile mini-C *source* into a verified :class:`Module`.

    Raises a :class:`~repro.errors.ReproError` subclass on any lexical,
    syntactic, semantic or structural problem.
    """
    program = parse(source, filename)
    table = analyze(program)
    module = lower_program(program, table, name)
    verify_module(module)
    return module
