"""Text renderings of the paper's figures.

* Figures 3/4 — frequency-vs-rank curves of all detected sequences of one
  length, combined across the suite, one series per optimization level;
* Figures 5/6 — per-benchmark detected sequences (dynamic frequency >= 5%).

Each figure renders as aligned numeric columns plus an ASCII bar chart —
the same information the paper plots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaining.sequence import sequence_label
from repro.feedback.study import StudyResult
from repro.opt.pipeline import OptLevel

#: Figures 5/6 report only sequences at or above this dynamic frequency.
FIGURE_MIN_FREQUENCY = 5.0


def ascii_chart(values: Sequence[float], width: int = 50,
                label: str = "") -> List[str]:
    """Horizontal ASCII bars, one row per value."""
    if not values:
        return [f"{label} (empty)"] if label else ["(empty)"]
    peak = max(values) or 1.0
    lines = []
    for i, v in enumerate(values):
        bar = "#" * max(1, int(round(width * v / peak))) if v > 0 else ""
        lines.append(f"{i + 1:>4} | {v:7.2f}% | {bar}")
    return lines


def figure_series(study: StudyResult, length: int
                  ) -> Dict[int, List[float]]:
    """Sorted frequency series per level — the raw data of Figures 3/4."""
    return {int(level): study.combined(level).series(length)
            for level in study.config.levels}


def _figure_combined(study: StudyResult, length: int, number: int) -> str:
    series = figure_series(study, length)
    lines = [
        f"Figure {number}: Length {length} sequences detected using "
        f"three levels of optimization",
        f"(sequence rank vs dynamic frequency, combined over "
        f"{len(study.benchmarks)} benchmarks)",
        "",
    ]
    for level in sorted(series):
        label = OptLevel(level).label
        values = series[level]
        lines.append(f"--- {label} ({len(values)} sequences)")
        top = study.combined(level).top(length, 12)
        for rank, (name, freq) in enumerate(top, start=1):
            bar = "#" * max(1, int(round(freq * 2))) if freq > 0 else ""
            lines.append(f"{rank:>4}. {sequence_label(name):28s} "
                         f"{freq:6.2f}% {bar}")
        rest = len(values) - len(top)
        if rest > 0:
            tail = sum(values[len(top):])
            lines.append(f"      ... {rest} more sequences "
                         f"({tail:.2f}% combined)")
        lines.append("")
    return "\n".join(lines)


def figure3(study: StudyResult) -> str:
    """Regenerate Figure 3 (length-2 sequences, three levels)."""
    return _figure_combined(study, 2, 3)


def figure4(study: StudyResult) -> str:
    """Regenerate Figure 4 (length-4 sequences, three levels)."""
    return _figure_combined(study, 4, 4)


def _figure_per_benchmark(study: StudyResult, length: int, number: int,
                          level: int,
                          min_frequency: float = FIGURE_MIN_FREQUENCY
                          ) -> str:
    lines = [
        f"Figure {number}: Detected chainable sequences of length {length}",
        f"(per benchmark, dynamic frequency >= {min_frequency:.0f}%, "
        f"optimization level {level})",
        "",
    ]
    for name, bench in study.benchmarks.items():
        detection = bench.detection_at(level)
        rows = [(seq_name, freq)
                for seq_name, freq in detection.top(length)
                if freq >= min_frequency]
        lines.append(f"--- {name}")
        if not rows:
            lines.append(f"      (no length-{length} sequences above "
                         f"{min_frequency:.0f}%)")
        for seq_name, freq in rows:
            bar = "#" * max(1, int(round(freq)))
            lines.append(f"      {sequence_label(seq_name):28s} "
                         f"{freq:6.2f}% {bar}")
        lines.append("")
    return "\n".join(lines)


def figure5(study: StudyResult, level: int = 1) -> str:
    """Regenerate Figure 5 (per-benchmark length-2 sequences)."""
    return _figure_per_benchmark(study, 2, 5, level)


def figure6(study: StudyResult, level: int = 1) -> str:
    """Regenerate Figure 6 (per-benchmark length-4 sequences)."""
    return _figure_per_benchmark(study, 4, 6, level)
