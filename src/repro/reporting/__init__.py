"""Rendering of the paper's tables and figures as text artifacts.

:mod:`repro.reporting.tables` regenerates Tables 1-3;
:mod:`repro.reporting.figures` regenerates the Figure 3-6 series (as
aligned numeric columns plus ASCII bar charts — the information content of
the paper's plots, printable in a terminal or CI log).
"""

from repro.reporting.tables import (render_table, table1, table2, table3,
                                    table3_rows)
from repro.reporting.figures import (ascii_chart, figure_series,
                                     figure3, figure4, figure5, figure6)
from repro.reporting.markdown import study_report
from repro.reporting.frontier import frontier_report

__all__ = [
    "render_table",
    "table1",
    "table2",
    "table3",
    "table3_rows",
    "ascii_chart",
    "figure_series",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "study_report",
    "frontier_report",
]
