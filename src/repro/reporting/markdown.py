"""Markdown report generation for study results.

``study_report`` renders a complete study as a single Markdown document —
the artifact a CI job publishes: per-benchmark cycle counts and speedups,
the Table-2 sequence matrix, per-level suite ILP, and the coverage
comparison.  Everything is derived from the same accessors the ASCII
reporting uses, so the two views can never disagree.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.chaining.sequence import SequenceName, sequence_label
from repro.feedback.study import StudyResult
from repro.opt.pipeline import OptLevel
from repro.reporting.tables import TABLE2_SEQUENCES


def _md_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    lines = ["| " + " | ".join(str(h) for h in headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def cycles_section(study: StudyResult) -> str:
    rows = []
    for name, bench in study.benchmarks.items():
        levels = sorted(int(l) for l in bench.runs)
        base = bench.cycles_at(levels[0])
        row: List = [name]
        for level in levels:
            cycles = bench.cycles_at(level)
            row.append(f"{cycles}")
        for level in levels[1:]:
            row.append(f"{base / bench.cycles_at(level):.2f}x")
        rows.append(row)
    levels = sorted(study.config.levels)
    headers = ["benchmark"] + [f"cycles L{l}" for l in levels] + \
        [f"speedup L{l}" for l in levels[1:]]
    return _md_table(headers, rows)


def sequences_section(study: StudyResult,
                      sequences: Sequence[SequenceName] =
                      TABLE2_SEQUENCES) -> str:
    combined = {level: study.combined(level)
                for level in study.config.levels}
    rows = []
    for name in sequences:
        rows.append([sequence_label(name)] + [
            f"{combined[level].frequency(name):.2f}%"
            for level in study.config.levels])
    headers = ["sequence"] + [f"L{int(l)}" for l in study.config.levels]
    return _md_table(headers, rows)


def ilp_section(study: StudyResult) -> str:
    # Imported here: repro.feedback.ilp renders through repro.reporting,
    # so a module-level import would be circular.
    from repro.feedback.ilp import characterize_ilp, suite_ilp_summary
    summary = suite_ilp_summary(characterize_ilp(study))
    rows = [[OptLevel(level).label, f"{ilp:.2f}"]
            for level, ilp in summary.items()]
    return _md_table(["optimization level", "suite ILP (ops/cycle)"],
                     rows)


def coverage_section(study: StudyResult,
                     benchmarks: Optional[Sequence[str]] = None,
                     threshold: float = 4.0) -> str:
    names = list(benchmarks) if benchmarks is not None \
        else list(study.benchmarks)
    rows = []
    for name in names:
        with_opt = study.coverage(name, max(study.config.levels[:2]
                                            or (1,)),
                                  threshold=threshold)
        without = study.coverage(name, 0, threshold=threshold)
        rows.append([
            name,
            f"{with_opt.coverage:.1f}% ({with_opt.sequence_count})",
            f"{without.coverage:.1f}% ({without.sequence_count})",
        ])
    return _md_table(
        ["benchmark", "coverage with opt (seqs)", "without opt (seqs)"],
        rows)


def study_report(study: StudyResult, title: str = "Study report") -> str:
    """Render the whole study as one Markdown document."""
    benches = ", ".join(study.benchmarks)
    parts = [
        f"# {title}",
        "",
        f"Benchmarks: {benches}.  Levels: "
        f"{', '.join(str(int(l)) for l in study.config.levels)}.  "
        f"Seed: {study.config.seed}.  "
        f"Unroll factor: {study.config.unroll_factor}.",
        "",
        "## Cycle counts and speedups",
        "",
        cycles_section(study),
        "",
        "## Combined sequence frequencies (paper Table 2)",
        "",
        sequences_section(study),
        "",
        "## Suite ILP (paper §8 extension)",
        "",
        ilp_section(study),
        "",
        "## Iterative coverage (paper §7)",
        "",
        coverage_section(study),
        "",
    ]
    return "\n".join(parts)
