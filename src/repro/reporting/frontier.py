"""Composite Markdown report for frontier studies.

``frontier_report`` renders a :class:`~repro.feedback.study.
FrontierResult` as one publishable document: a summary-counts table
(one row per benchmark), the suite-wide chain table with
human-readable "on N of M frontiers" reason strings, and per-benchmark
breakpoint tables — the benchmark × breakpoint → chains/speedup/area
matrix the budget-grid report could never show, because a grid only
samples the budgets someone thought to ask for.
"""

from __future__ import annotations

from typing import List

from repro.feedback.study import FrontierResult
from repro.reporting.markdown import _md_table


def summary_section(result: FrontierResult) -> str:
    rows: List[List] = []
    for name, bench in result.benchmarks.items():
        points = bench.points()
        best = max((p for _, p in points), key=lambda p: p.speedup,
                   default=None)
        rows.append([
            name,
            len(bench.frontier.segments),
            len(bench.designs),
            f"{best.speedup:.3f}x" if best else "-",
            best.area if best else "-",
        ])
    return _md_table(
        ["benchmark", "breakpoints", "chain sets measured",
         "peak speedup", "area at peak"], rows)


def suite_chains_section(result: FrontierResult) -> str:
    suite_size = len(result.benchmarks)
    rows = []
    for chain in result.suite_chains():
        rows.append([
            chain.label,
            f"{chain.frontier_count}/{suite_size}",
            f"{chain.combined_frequency:.2f}%",
            chain.reason(suite_size),
        ])
    return _md_table(["chain", "frontiers", "suite freq", "why it pays"],
                     rows)


def benchmark_section(result: FrontierResult, name: str) -> str:
    bench = result.frontier(name)
    rows = []
    for budget, best in bench.points():
        rows.append([
            budget,
            ", ".join(best.labels()),
            f"{best.speedup:.3f}x",
            best.area,
        ])
    if not rows:
        return "(no viable design at any budget)"
    return _md_table(["budget ≥", "winning chains", "speedup", "area"],
                     rows)


def frontier_report(result: FrontierResult,
                    title: str = "Frontier study report") -> str:
    """Render the whole frontier study as one Markdown document."""
    config = result.config
    ceiling = (str(config.max_budget) if config.max_budget is not None
               else "unbounded")
    parts = [
        f"# {title}",
        "",
        f"Benchmarks: {', '.join(result.benchmarks)}.  "
        f"Level: {config.level}.  Seed: {config.seed}.  "
        f"Engine: {config.engine}.  Sweep ceiling: {ceiling}.",
        "",
        "Each benchmark's candidate pool was swept once in breakpoint "
        "order; every budget between two breakpoints answers "
        "identically, so the tables below are the *complete* "
        "cost/performance trade-off, not a sampled grid.",
        "",
        "## Summary",
        "",
        summary_section(result),
        "",
        "## Suite-wide chains (dynamic-ops weighted, paper §6.1)",
        "",
        suite_chains_section(result),
        "",
    ]
    for name in result.benchmarks:
        parts.extend([
            f"## {name}: frontier breakpoints",
            "",
            benchmark_section(result, name),
            "",
        ])
    return "\n".join(parts)
