"""ASCII renderings of the paper's tables.

* :func:`table1` — benchmark descriptions (paper Table 1);
* :func:`table2` — example sequence frequencies at the three optimization
  levels, combined across the suite (paper Table 2);
* :func:`table3` — iterative sequence coverage with and without the
  parallelizing optimizations (paper Table 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaining.coverage import CoverageReport
from repro.chaining.sequence import SequenceName, sequence_label
from repro.feedback.study import StudyResult
from repro.opt.pipeline import OptLevel
from repro.suite.registry import all_benchmarks

#: The example sequences of paper Table 2.
TABLE2_SEQUENCES: Tuple[SequenceName, ...] = (
    ("multiply", "add"),
    ("add", "multiply"),
    ("add", "add"),
    ("add", "multiply", "add"),
    ("multiply", "add", "add"),
)

#: The benchmark subset of paper Table 3.
TABLE3_BENCHMARKS: Tuple[str, ...] = ("sewha", "feowf", "bspline", "edge",
                                      "iir")


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]]
    cells += [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def table1() -> str:
    """Regenerate Table 1: benchmark descriptions."""
    rows = []
    for spec in all_benchmarks():
        rows.append((spec.name, spec.source_lines, spec.description,
                     spec.data_description))
    return render_table(
        ("Benchmark", "Lines", "Description", "Data Input"),
        rows,
        title="Table 1: Benchmark Descriptions",
    )


def table2(study: StudyResult,
           sequences: Sequence[SequenceName] = TABLE2_SEQUENCES) -> str:
    """Regenerate Table 2: example combined sequence frequencies."""
    combined = {level: study.combined(level)
                for level in study.config.levels}
    rows = []
    for name in sequences:
        row: List[str] = [sequence_label(name)]
        for level in study.config.levels:
            row.append(f"{combined[level].frequency(name):.2f}%")
        rows.append(row)
    headers = ["Operation Sequence"] + [
        f"level {int(lvl)}" for lvl in study.config.levels]
    return render_table(
        headers, rows,
        title="Table 2: Detected sequence examples (across all benchmarks)")


def table3_rows(study: StudyResult,
                benchmarks: Sequence[str] = TABLE3_BENCHMARKS,
                optimized_level: int = 1,
                threshold: float = 4.0,
                max_sequences: int = 12,
                ) -> Dict[str, Dict[bool, CoverageReport]]:
    """Coverage reports for Table 3: benchmark -> {optimized?: report}."""
    rows: Dict[str, Dict[bool, CoverageReport]] = {}
    for name in benchmarks:
        rows[name] = {
            True: study.coverage(name, optimized_level,
                                 threshold=threshold,
                                 max_sequences=max_sequences),
            False: study.coverage(name, 0, threshold=threshold,
                                  max_sequences=max_sequences),
        }
    return rows


def table3(study: StudyResult,
           benchmarks: Sequence[str] = TABLE3_BENCHMARKS,
           optimized_level: int = 1,
           threshold: float = 4.0) -> str:
    """Regenerate Table 3: iterative sequence coverage."""
    reports = table3_rows(study, benchmarks, optimized_level, threshold)
    rows: List[Tuple] = []
    for name in benchmarks:
        for optimized in (True, False):
            report = reports[name][optimized]
            first = True
            for step in report.steps:
                rows.append((
                    name if first else "",
                    ("yes" if optimized else "no") if first else "",
                    step.label,
                    f"{step.frequency:.2f}%",
                    f"{report.coverage:.2f}%" if first else "",
                ))
                first = False
            if not report.steps:
                rows.append((name, "yes" if optimized else "no",
                             "(none above threshold)", "-", "0.00%"))
    return render_table(
        ("Benchmark", "Opt.", "Sequences", "Frequency", "Coverage"),
        rows,
        title="Table 3: Sequence Coverage")
