"""Linear three-address function: a list of instructions plus labels.

This is the form produced by the front end (paper Figure 2, step 1).  Code in
a :class:`Function` is sequential — exactly "the operation ordering created by
the compiler ... derived from the sequential statements in the high-level
language" that the paper contrasts against optimized program graphs.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.errors import IRError
from repro.ir.instr import Instruction
from repro.ir.values import ArraySymbol, Label, VirtualReg

Item = Union[Instruction, Label]


class Function:
    """A function in linear three-address form.

    Attributes
    ----------
    name:
        Function name; ``main`` is the simulator entry point.
    params:
        Formal parameters.  Scalars are :class:`VirtualReg`; array parameters
        are :class:`ArraySymbol` placeholders bound to caller arrays at call
        time (mini-C passes arrays by reference).
    return_type:
        ``"int"``, ``"float"`` or ``"void"``.
    body:
        Interleaved :class:`Instruction` and :class:`Label` items.
    local_arrays:
        Arrays declared inside the function (storage instantiated per call).
    """

    def __init__(self, name: str, params: Sequence = (),
                 return_type: str = "void"):
        self.name = name
        self.params = list(params)
        self.return_type = return_type
        self.body: List[Item] = []
        self.local_arrays: List[ArraySymbol] = []
        self._temp_counter = itertools.count(0)
        self._label_counter = itertools.count(0)

    # -- construction -----------------------------------------------------------

    def new_temp(self, is_float: bool = False) -> VirtualReg:
        """Allocate a fresh virtual register."""
        prefix = "f" if is_float else "t"
        return VirtualReg(f"{prefix}{next(self._temp_counter)}", is_float)

    def new_label(self, hint: str = "L") -> str:
        """Allocate a fresh label name."""
        return f".{hint}{next(self._label_counter)}"

    def emit(self, item: Item) -> Item:
        """Append an instruction or label to the body."""
        if not isinstance(item, (Instruction, Label)):
            raise IRError(f"cannot emit {item!r} into a function body")
        self.body.append(item)
        return item

    # -- accessors ---------------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        """Iterate over instructions, skipping labels."""
        return (it for it in self.body if isinstance(it, Instruction))

    def labels(self) -> Dict[str, int]:
        """Map label name -> index in ``body``."""
        return {it.name: i for i, it in enumerate(self.body)
                if isinstance(it, Label)}

    def instruction_count(self) -> int:
        return sum(1 for _ in self.instructions())

    def scalar_params(self) -> List[VirtualReg]:
        return [p for p in self.params if isinstance(p, VirtualReg)]

    def array_params(self) -> List[ArraySymbol]:
        return [p for p in self.params if isinstance(p, ArraySymbol)]

    def registers(self) -> List[VirtualReg]:
        """All registers referenced anywhere in the body (stable order)."""
        seen: Dict[VirtualReg, None] = {}
        for p in self.scalar_params():
            seen.setdefault(p)
        for ins in self.instructions():
            for r in ins.defs() + ins.uses():
                seen.setdefault(r)
        return list(seen)

    def find_array(self, name: str) -> Optional[ArraySymbol]:
        for arr in itertools.chain(self.local_arrays, self.array_params()):
            if arr.name == name:
                return arr
        return None

    def __repr__(self) -> str:
        return (f"<Function {self.name}({len(self.params)} params, "
                f"{self.instruction_count()} instrs)>")
