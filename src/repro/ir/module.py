"""A module: the unit of compilation (one benchmark program).

A :class:`Module` owns the global arrays (the benchmark's input/output
buffers), global scalar initial values, and every function.  ``main`` is the
entry point the simulator executes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import IRError
from repro.ir.function import Function
from repro.ir.values import ArraySymbol, VirtualReg


class Module:
    """A compiled mini-C translation unit."""

    def __init__(self, name: str = "<module>"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.global_arrays: Dict[str, ArraySymbol] = {}
        # Initial contents for global arrays that carry initializers
        # (e.g. filter coefficient tables): name -> list of numbers.
        self.array_initializers: Dict[str, List[float]] = {}
        # Global scalars: name -> (is_float, initial value).
        self.global_scalars: Dict[str, tuple] = {}

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions:
            raise IRError(f"duplicate function {fn.name!r}")
        self.functions[fn.name] = fn
        return fn

    def add_global_array(self, sym: ArraySymbol,
                         init: Optional[List[float]] = None) -> ArraySymbol:
        if sym.name in self.global_arrays:
            raise IRError(f"duplicate global array {sym.name!r}")
        self.global_arrays[sym.name] = sym
        if init is not None:
            if len(init) > sym.size:
                raise IRError(
                    f"initializer for {sym.name!r} has {len(init)} elements "
                    f"but the array holds {sym.size}")
            self.array_initializers[sym.name] = list(init)
        return sym

    def add_global_scalar(self, name: str, is_float: bool,
                          value: float) -> None:
        if name in self.global_scalars:
            raise IRError(f"duplicate global scalar {name!r}")
        self.global_scalars[name] = (is_float, value)

    @property
    def entry(self) -> Function:
        try:
            return self.functions["main"]
        except KeyError:
            raise IRError(f"module {self.name!r} has no main function")

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"unknown function {name!r}")

    def total_instructions(self) -> int:
        return sum(f.instruction_count() for f in self.functions.values())

    def __repr__(self) -> str:
        return (f"<Module {self.name}: {len(self.functions)} functions, "
                f"{self.total_instructions()} instructions>")
