"""Opcode vocabulary of the three-address code.

Opcodes are deliberately close to what a simple load/store RISC datapath
offers, because the paper's chained instructions are built by fusing exactly
these micro-operations.  Each opcode carries:

* an :class:`OpKind` classifying it for the analyses (arithmetic, memory,
  control, ...);
* a *chain class* — the name used by the paper when reporting sequences
  ("multiply-add", "fload-fmultiply", "add-compare", ...).  Opcodes whose
  chain class is ``None`` never participate in chainable sequences (moves,
  control flow, calls).
"""

from __future__ import annotations

import enum


class OpKind(enum.Enum):
    """Coarse classification of opcodes, used by dataflow and scheduling."""

    INT_ARITH = "int_arith"
    FLOAT_ARITH = "float_arith"
    COMPARE = "compare"
    CONVERT = "convert"
    MEMORY = "memory"
    DATA = "data"        # register-to-register moves
    CONTROL = "control"  # branches, jumps, returns
    CALL = "call"        # calls and intrinsics
    META = "meta"        # labels / nops


class Op(enum.Enum):
    """Every opcode of the three-address code."""

    # Integer arithmetic / logic.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    NEG = "neg"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"

    # Integer comparisons (produce 0/1 in an integer register).
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPGT = "cmpgt"
    CMPGE = "cmpge"

    # Floating-point arithmetic.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"

    # Floating-point comparisons (produce 0/1 in an integer register).
    FCMPEQ = "fcmpeq"
    FCMPNE = "fcmpne"
    FCMPLT = "fcmplt"
    FCMPLE = "fcmple"
    FCMPGT = "fcmpgt"
    FCMPGE = "fcmpge"

    # Conversions.
    ITOF = "itof"
    FTOI = "ftoi"

    # Memory (arrays are the only memory objects; address = element index).
    LOAD = "load"      # dst = array[idx]          (integer array)
    STORE = "store"    # array[idx] = src          (integer array)
    FLOAD = "fload"    # dst = array[idx]          (float array)
    FSTORE = "fstore"  # array[idx] = src          (float array)

    # Data movement.
    MOV = "mov"
    FMOV = "fmov"

    # Control flow.
    BR = "br"          # conditional branch on an integer register
    JMP = "jmp"        # unconditional jump
    RET = "ret"        # return (optional value)

    # Calls.
    CALL = "call"      # user function call
    INTRIN = "intrin"  # opaque math intrinsic (sin, cos, sqrt, ...)

    # Meta.
    NOP = "nop"

    # A fused chained instruction (ASIP extension).  Only produced by
    # repro.asip.select; carries its constituent operations in a
    # FusedInstruction and executes them back-to-back within one issue.
    CHAIN = "chain"


_KIND = {
    Op.ADD: OpKind.INT_ARITH,
    Op.SUB: OpKind.INT_ARITH,
    Op.MUL: OpKind.INT_ARITH,
    Op.DIV: OpKind.INT_ARITH,
    Op.MOD: OpKind.INT_ARITH,
    Op.NEG: OpKind.INT_ARITH,
    Op.AND: OpKind.INT_ARITH,
    Op.OR: OpKind.INT_ARITH,
    Op.XOR: OpKind.INT_ARITH,
    Op.NOT: OpKind.INT_ARITH,
    Op.SHL: OpKind.INT_ARITH,
    Op.SHR: OpKind.INT_ARITH,
    Op.CMPEQ: OpKind.COMPARE,
    Op.CMPNE: OpKind.COMPARE,
    Op.CMPLT: OpKind.COMPARE,
    Op.CMPLE: OpKind.COMPARE,
    Op.CMPGT: OpKind.COMPARE,
    Op.CMPGE: OpKind.COMPARE,
    Op.FADD: OpKind.FLOAT_ARITH,
    Op.FSUB: OpKind.FLOAT_ARITH,
    Op.FMUL: OpKind.FLOAT_ARITH,
    Op.FDIV: OpKind.FLOAT_ARITH,
    Op.FNEG: OpKind.FLOAT_ARITH,
    Op.FCMPEQ: OpKind.COMPARE,
    Op.FCMPNE: OpKind.COMPARE,
    Op.FCMPLT: OpKind.COMPARE,
    Op.FCMPLE: OpKind.COMPARE,
    Op.FCMPGT: OpKind.COMPARE,
    Op.FCMPGE: OpKind.COMPARE,
    Op.ITOF: OpKind.CONVERT,
    Op.FTOI: OpKind.CONVERT,
    Op.LOAD: OpKind.MEMORY,
    Op.STORE: OpKind.MEMORY,
    Op.FLOAD: OpKind.MEMORY,
    Op.FSTORE: OpKind.MEMORY,
    Op.MOV: OpKind.DATA,
    Op.FMOV: OpKind.DATA,
    Op.BR: OpKind.CONTROL,
    Op.JMP: OpKind.CONTROL,
    Op.RET: OpKind.CONTROL,
    Op.CALL: OpKind.CALL,
    Op.INTRIN: OpKind.CALL,
    Op.NOP: OpKind.META,
    Op.CHAIN: OpKind.META,
}

# The vocabulary the paper uses when naming detected sequences: Table 2 and
# Table 3 report names like "multiply-add", "add-shift-add", "add-compare",
# "load-multiply-add", "fload-fmultiply", "fmul-fsub-fstore".  Data-movement,
# control and call opcodes are not chainable operations and map to None.
_CHAIN_CLASS = {
    Op.ADD: "add",
    Op.SUB: "subtract",
    Op.MUL: "multiply",
    Op.DIV: "divide",
    Op.MOD: "divide",
    Op.NEG: "subtract",
    Op.AND: "logic",
    Op.OR: "logic",
    Op.XOR: "logic",
    Op.NOT: "logic",
    Op.SHL: "shift",
    Op.SHR: "shift",
    Op.CMPEQ: "compare",
    Op.CMPNE: "compare",
    Op.CMPLT: "compare",
    Op.CMPLE: "compare",
    Op.CMPGT: "compare",
    Op.CMPGE: "compare",
    Op.FADD: "fadd",
    Op.FSUB: "fsub",
    Op.FMUL: "fmultiply",
    Op.FDIV: "fdivide",
    Op.FNEG: "fsub",
    Op.FCMPEQ: "fcompare",
    Op.FCMPNE: "fcompare",
    Op.FCMPLT: "fcompare",
    Op.FCMPLE: "fcompare",
    Op.FCMPGT: "fcompare",
    Op.FCMPGE: "fcompare",
    Op.ITOF: "convert",
    Op.FTOI: "convert",
    Op.LOAD: "load",
    Op.STORE: "store",
    Op.FLOAD: "fload",
    Op.FSTORE: "fstore",
    Op.MOV: None,
    Op.FMOV: None,
    Op.BR: None,
    Op.JMP: None,
    Op.RET: None,
    Op.CALL: None,
    Op.INTRIN: None,
    Op.NOP: None,
    Op.CHAIN: None,
}

_FLOAT_RESULT = {
    Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FNEG,
    Op.ITOF, Op.FLOAD, Op.FMOV,
}

_COMMUTATIVE = {Op.ADD, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.FADD, Op.FMUL,
                Op.CMPEQ, Op.CMPNE, Op.FCMPEQ, Op.FCMPNE}


def kind(op: Op) -> OpKind:
    """Return the :class:`OpKind` of *op*."""
    return _KIND[op]


def chain_class(op: Op):
    """Return the paper's sequence-vocabulary name for *op*, or ``None``.

    ``None`` means the opcode never appears inside a chainable sequence.
    """
    return _CHAIN_CLASS[op]


def is_chainable(op: Op) -> bool:
    """True when *op* may be an element of a chained-operation sequence."""
    return _CHAIN_CLASS[op] is not None


def is_float_op(op: Op) -> bool:
    """True when *op* produces a floating-point result."""
    return op in _FLOAT_RESULT


def is_commutative(op: Op) -> bool:
    """True when *op* may have its two source operands swapped."""
    return op in _COMMUTATIVE


def result_type(op: Op) -> str:
    """Return ``"float"`` / ``"int"`` / ``"none"`` for *op*'s destination."""
    if op in (Op.STORE, Op.FSTORE, Op.BR, Op.JMP, Op.RET, Op.NOP, Op.CHAIN):
        return "none"
    return "float" if op in _FLOAT_RESULT else "int"


def has_side_effects(op: Op) -> bool:
    """True when *op* writes memory or transfers control.

    Side-effecting operations must never be executed speculatively, which
    constrains how far percolation scheduling may move them (they cannot be
    hoisted above a conditional branch).
    """
    return op in (Op.STORE, Op.FSTORE, Op.CALL, Op.BR, Op.JMP, Op.RET,
                  Op.CHAIN)


def is_control(op: Op) -> bool:
    """True for branch / jump / return opcodes."""
    return _KIND[op] is OpKind.CONTROL


def is_memory(op: Op) -> bool:
    """True for the four array access opcodes."""
    return _KIND[op] is OpKind.MEMORY


def is_store(op: Op) -> bool:
    """True for the two store opcodes."""
    return op in (Op.STORE, Op.FSTORE)


def is_load(op: Op) -> bool:
    """True for the two load opcodes."""
    return op in (Op.LOAD, Op.FLOAD)


INT_BINARY = {
    "+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV, "%": Op.MOD,
    "&": Op.AND, "|": Op.OR, "^": Op.XOR, "<<": Op.SHL, ">>": Op.SHR,
    "==": Op.CMPEQ, "!=": Op.CMPNE, "<": Op.CMPLT, "<=": Op.CMPLE,
    ">": Op.CMPGT, ">=": Op.CMPGE,
}

FLOAT_BINARY = {
    "+": Op.FADD, "-": Op.FSUB, "*": Op.FMUL, "/": Op.FDIV,
    "==": Op.FCMPEQ, "!=": Op.FCMPNE, "<": Op.FCMPLT, "<=": Op.FCMPLE,
    ">": Op.FCMPGT, ">=": Op.FCMPGE,
}
