"""Human-readable rendering of three-address code.

The textual form is stable enough for golden tests, e.g.::

    t2 = add t0, t1
    f3 = fload @coeff[35][t2]
    fstore @out[100][f4], t2
    br t5, .L0, .L1
"""

from __future__ import annotations

from typing import Iterable

from repro.ir.instr import Instruction
from repro.ir.ops import Op
from repro.ir.values import Label


def format_instruction(ins: Instruction) -> str:
    """Render one instruction."""
    op = ins.op
    if op in (Op.STORE, Op.FSTORE):
        value, index = ins.srcs
        return f"{op.value} @{ins.array.name}[{index}], {value}"
    if op in (Op.LOAD, Op.FLOAD):
        (index,) = ins.srcs
        return f"{ins.dest} = {op.value} @{ins.array.name}[{index}]"
    if op is Op.BR:
        (cond,) = ins.srcs
        return f"br {cond}, {ins.true_label}, {ins.false_label}"
    if op is Op.JMP:
        return f"jmp {ins.true_label}"
    if op is Op.RET:
        if ins.srcs:
            return f"ret {ins.srcs[0]}"
        return "ret"
    if op in (Op.CALL, Op.INTRIN):
        args = ", ".join(str(s) for s in ins.srcs)
        call = f"{op.value} {ins.callee}({args})"
        return f"{ins.dest} = {call}" if ins.dest is not None else call
    if op is Op.NOP:
        return "nop"
    if op is Op.CHAIN:
        inner = "; ".join(format_instruction(p) for p in ins.parts)
        return f"{ins.chain.name} {{ {inner} }}"
    operands = ", ".join(str(s) for s in ins.srcs)
    if ins.dest is not None:
        return f"{ins.dest} = {op.value} {operands}"
    return f"{op.value} {operands}"


def format_function(fn) -> str:
    """Render a whole function, labels outdented."""
    params = ", ".join(
        f"{p.type_name} {p.name}" if hasattr(p, "name") else str(p)
        for p in fn.params
    )
    lines = [f"func {fn.return_type} {fn.name}({params}) {{"]
    for arr in fn.local_arrays:
        lines.append(f"  local {arr.type_name} {arr.name}[{arr.size}]")
    for item in fn.body:
        if isinstance(item, Label):
            lines.append(str(item))
        else:
            lines.append(f"  {format_instruction(item)}")
    lines.append("}")
    return "\n".join(lines)


def format_module(module) -> str:
    """Render a whole module."""
    lines = [f"module {module.name}"]
    for name, (is_float, value) in sorted(module.global_scalars.items()):
        ty = "float" if is_float else "int"
        lines.append(f"global {ty} {name} = {value}")
    for name, sym in sorted(module.global_arrays.items()):
        if name in module.global_scalars:
            continue  # backing storage of a scalar already shown above
        init = module.array_initializers.get(name)
        suffix = ""
        if init:
            values = ", ".join(repr(v) for v in init)
            suffix = f" = {{ {values} }}"
        lines.append(f"global {sym.type_name} {name}[{sym.size}]{suffix}")
    for fn in module.functions.values():
        lines.append("")
        lines.append(format_function(fn))
    return "\n".join(lines)
