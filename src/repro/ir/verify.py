"""Structural verification of linear three-address code.

``verify_function`` checks the invariants that every later stage relies on:

* every branch/jump target label exists;
* operand register classes match the opcode (no float register fed to an
  integer adder, and vice versa);
* loads/stores reference arrays of the matching element type;
* every register is defined before use along the *linear* order (the front
  end always produces code with this property; the graph form re-checks
  through dataflow analysis instead);
* the function ends with control flow (no fall-through off the end).
"""

from __future__ import annotations

from typing import Set

from repro.errors import IRError
from repro.ir.instr import Instruction
from repro.ir.ops import Op, OpKind, kind, result_type
from repro.ir.values import ArraySymbol, Constant, Label, VirtualReg

_INT_SRC_OPS = {
    Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.NEG, Op.AND, Op.OR, Op.XOR,
    Op.NOT, Op.SHL, Op.SHR, Op.CMPEQ, Op.CMPNE, Op.CMPLT, Op.CMPLE,
    Op.CMPGT, Op.CMPGE, Op.ITOF, Op.MOV,
}
_FLOAT_SRC_OPS = {
    Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FNEG, Op.FCMPEQ, Op.FCMPNE,
    Op.FCMPLT, Op.FCMPLE, Op.FCMPGT, Op.FCMPGE, Op.FTOI, Op.FMOV,
}


def _check_operand_types(ins: Instruction) -> None:
    op = ins.op
    if op in _INT_SRC_OPS:
        for s in ins.srcs:
            if getattr(s, "is_float", False):
                raise IRError(f"integer op uses float operand: {ins}")
    elif op in _FLOAT_SRC_OPS:
        for s in ins.srcs:
            if not getattr(s, "is_float", False):
                raise IRError(f"float op uses int operand: {ins}")
    elif op in (Op.LOAD, Op.FLOAD):
        (index,) = ins.srcs
        if getattr(index, "is_float", False):
            raise IRError(f"load index must be integer: {ins}")
        want = op is Op.FLOAD
        if ins.array.is_float != want:
            raise IRError(f"load element type mismatches array: {ins}")
    elif op in (Op.STORE, Op.FSTORE):
        value, index = ins.srcs
        if getattr(index, "is_float", False):
            raise IRError(f"store index must be integer: {ins}")
        want = op is Op.FSTORE
        if ins.array.is_float != want:
            raise IRError(f"store element type mismatches array: {ins}")
        if getattr(value, "is_float", False) != want:
            raise IRError(f"store value type mismatches array: {ins}")
    elif op is Op.BR:
        (cond,) = ins.srcs
        if getattr(cond, "is_float", False):
            raise IRError(f"branch condition must be integer: {ins}")

    if ins.dest is not None and op not in (Op.CALL, Op.INTRIN):
        want = result_type(op)
        if want == "none":
            raise IRError(f"{op.value} must not define a register: {ins}")
        if ins.dest.is_float != (want == "float"):
            raise IRError(f"destination class mismatches opcode: {ins}")


def _check_call_site(fn, ins: Instruction, callee) -> None:
    """Check one ``call`` against the callee's signature.

    The front end converts every scalar argument to the parameter's
    register class and semantic analysis pins array arguments to the
    declared element type, so at this level any mismatch is a real
    invariant violation, not a pending coercion.
    """
    if len(ins.srcs) != len(callee.params):
        raise IRError(
            f"{fn.name}: call to {callee.name!r} passes "
            f"{len(ins.srcs)} argument(s), signature has "
            f"{len(callee.params)}")
    for i, (arg, param) in enumerate(zip(ins.srcs, callee.params)):
        if isinstance(param, ArraySymbol):
            if not isinstance(arg, ArraySymbol):
                raise IRError(
                    f"{fn.name}: call to {callee.name!r}: argument "
                    f"{i} must be an array, got {arg}")
            if arg.is_float != param.is_float:
                raise IRError(
                    f"{fn.name}: call to {callee.name!r}: array "
                    f"argument {i} is {arg.type_name}, parameter "
                    f"{param.name!r} is {param.type_name}")
        else:
            if isinstance(arg, ArraySymbol):
                raise IRError(
                    f"{fn.name}: call to {callee.name!r}: argument "
                    f"{i} must be a scalar, got array {arg}")
            if getattr(arg, "is_float", False) != param.is_float:
                raise IRError(
                    f"{fn.name}: call to {callee.name!r}: argument "
                    f"{i} register class mismatches parameter "
                    f"{param.name!r}")
    if callee.return_type == "void":
        if ins.dest is not None:
            raise IRError(
                f"{fn.name}: call to void function {callee.name!r} "
                f"must not define a register")
    elif ins.dest is not None \
            and ins.dest.is_float != (callee.return_type == "float"):
        raise IRError(
            f"{fn.name}: call destination class mismatches "
            f"{callee.name!r} return type {callee.return_type!r}")


def verify_function(fn, module=None) -> None:
    """Raise :class:`IRError` on the first violated invariant."""
    labels = fn.labels()
    defined: Set[VirtualReg] = set(fn.scalar_params())
    body = fn.body

    if not body:
        raise IRError(f"function {fn.name!r} has an empty body")

    for item in body:
        if isinstance(item, Label):
            continue
        ins = item
        _check_operand_types(ins)
        for target in (ins.true_label, ins.false_label):
            if target is not None and target not in labels:
                raise IRError(
                    f"{fn.name}: branch to unknown label {target!r}: {ins}")
        if ins.op in (Op.CALL,) and module is not None:
            if ins.callee not in module.functions:
                raise IRError(
                    f"{fn.name}: call to unknown function {ins.callee!r}")
            _check_call_site(fn, ins, module.functions[ins.callee])
        for reg in ins.uses():
            if reg not in defined:
                # A use before any linear definition.  Loop-carried registers
                # are defined before the loop by construction in our front
                # end, so linear def-before-use is a real invariant there.
                raise IRError(
                    f"{fn.name}: register {reg} used before definition: {ins}")
        for reg in ins.defs():
            defined.add(reg)

    last = body[-1]
    if isinstance(last, Label) or not last.is_control:
        raise IRError(f"function {fn.name!r} does not end in control flow")


def verify_module(module) -> None:
    """Verify every function of *module*."""
    module.entry  # raises if main is missing
    for fn in module.functions.values():
        verify_function(fn, module)
