"""Convenience builder for emitting three-address code.

The lowering stage drives an :class:`IRBuilder`; tests also use it to write
small IR snippets by hand without going through the mini-C front end.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.errors import IRError
from repro.ir.instr import Instruction
from repro.ir.ops import Op, is_float_op, result_type
from repro.ir.values import ArraySymbol, Constant, Label, VirtualReg

Operand = Union[VirtualReg, Constant, int, float]


def _coerce(value: Operand, is_float: bool = False):
    """Turn raw Python numbers into :class:`Constant` operands."""
    if isinstance(value, (VirtualReg, Constant)):
        return value
    if isinstance(value, bool):
        return Constant(int(value), False)
    if isinstance(value, int) and not is_float:
        return Constant(value, False)
    if isinstance(value, (int, float)):
        return Constant(float(value), True) if is_float else Constant(value, isinstance(value, float))
    raise IRError(f"cannot use {value!r} as an operand")


class IRBuilder:
    """Emit instructions into a :class:`~repro.ir.function.Function`."""

    def __init__(self, function):
        self.function = function

    # -- primitives ------------------------------------------------------------

    def temp(self, is_float: bool = False) -> VirtualReg:
        return self.function.new_temp(is_float)

    def label(self, hint: str = "L") -> str:
        return self.function.new_label(hint)

    def place(self, label_name: str) -> None:
        """Place a previously allocated label at the current position."""
        self.function.emit(Label(label_name))

    def emit(self, instr: Instruction) -> Instruction:
        self.function.emit(instr)
        return instr

    # -- typed emission helpers ---------------------------------------------------

    def binary(self, op: Op, a: Operand, b: Operand,
               dest: Optional[VirtualReg] = None) -> VirtualReg:
        """Emit ``dest = op(a, b)`` and return the destination register."""
        want_float = is_float_op(op)
        a = _coerce(a, want_float)
        b = _coerce(b, want_float)
        if dest is None:
            dest = self.temp(result_type(op) == "float")
        self.emit(Instruction(op, dest=dest, srcs=(a, b)))
        return dest

    def unary(self, op: Op, a: Operand,
              dest: Optional[VirtualReg] = None) -> VirtualReg:
        want_float = is_float_op(op)
        a = _coerce(a, want_float)
        if dest is None:
            dest = self.temp(result_type(op) == "float")
        self.emit(Instruction(op, dest=dest, srcs=(a,)))
        return dest

    def move(self, src: Operand, dest: Optional[VirtualReg] = None,
             is_float: Optional[bool] = None) -> VirtualReg:
        src = _coerce(src, bool(is_float))
        if is_float is None:
            is_float = getattr(src, "is_float", False)
        if dest is None:
            dest = self.temp(is_float)
        op = Op.FMOV if is_float else Op.MOV
        self.emit(Instruction(op, dest=dest, srcs=(src,)))
        return dest

    def load(self, array: ArraySymbol, index: Operand,
             dest: Optional[VirtualReg] = None) -> VirtualReg:
        index = _coerce(index)
        if dest is None:
            dest = self.temp(array.is_float)
        op = Op.FLOAD if array.is_float else Op.LOAD
        self.emit(Instruction(op, dest=dest, srcs=(index,), array=array))
        return dest

    def store(self, array: ArraySymbol, index: Operand,
              value: Operand) -> Instruction:
        index = _coerce(index)
        value = _coerce(value, array.is_float)
        op = Op.FSTORE if array.is_float else Op.STORE
        return self.emit(Instruction(op, srcs=(value, index), array=array))

    def branch(self, cond: Operand, true_label: str,
               false_label: str) -> Instruction:
        cond = _coerce(cond)
        return self.emit(Instruction(Op.BR, srcs=(cond,),
                                     true_label=true_label,
                                     false_label=false_label))

    def jump(self, label: str) -> Instruction:
        return self.emit(Instruction(Op.JMP, true_label=label))

    def ret(self, value: Optional[Operand] = None,
            is_float: bool = False) -> Instruction:
        srcs = () if value is None else (_coerce(value, is_float),)
        return self.emit(Instruction(Op.RET, srcs=srcs))

    def call(self, callee: str, args: Sequence[Operand] = (),
             dest: Optional[VirtualReg] = None) -> Optional[VirtualReg]:
        args = tuple(_coerce(a) for a in args)
        self.emit(Instruction(Op.CALL, dest=dest, srcs=args, callee=callee))
        return dest

    def intrinsic(self, name: str, args: Sequence[Operand],
                  dest: Optional[VirtualReg] = None) -> VirtualReg:
        args = tuple(_coerce(a, True) for a in args)
        if dest is None:
            dest = self.temp(True)
        self.emit(Instruction(Op.INTRIN, dest=dest, srcs=args, callee=name))
        return dest

    def convert(self, src: Operand, to_float: bool,
                dest: Optional[VirtualReg] = None) -> VirtualReg:
        op = Op.ITOF if to_float else Op.FTOI
        src = _coerce(src, not to_float)
        if dest is None:
            dest = self.temp(to_float)
        self.emit(Instruction(op, dest=dest, srcs=(src,)))
        return dest
