"""Three-address intermediate representation.

This package is the common currency of the whole toolchain: the front end
lowers mini-C into linear three-address code (:class:`~repro.ir.function.Function`
objects holding :class:`~repro.ir.instr.Instruction` lists), the CFG builder
turns that into a program graph, and every later stage (simulator, optimizer,
sequence analyzer, ASIP selector) consumes one of those two forms.

The design mirrors the paper's step 1 output: "a version of the Gnu C
Compiler (gcc) which was modified to generate a 3-address code".
"""

from repro.ir.ops import Op, OpKind, chain_class, is_float_op, result_type
from repro.ir.values import Constant, VirtualReg, ArraySymbol, Label
from repro.ir.instr import Instruction
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.builder import IRBuilder
from repro.ir.printer import format_instruction, format_function, format_module
from repro.ir.asm import parse_function, parse_module
from repro.ir.verify import verify_function, verify_module

__all__ = [
    "Op",
    "OpKind",
    "chain_class",
    "is_float_op",
    "result_type",
    "Constant",
    "VirtualReg",
    "ArraySymbol",
    "Label",
    "Instruction",
    "Function",
    "Module",
    "IRBuilder",
    "format_instruction",
    "format_function",
    "format_module",
    "parse_function",
    "parse_module",
    "verify_function",
    "verify_module",
]
