"""Operand model of the three-address code.

Instructions operate on three kinds of values:

* :class:`VirtualReg` — an unbounded supply of typed virtual registers
  (``t17``, ``f4``, named locals like ``i``/``sum``);
* :class:`Constant` — immediate integer / float operands;
* :class:`ArraySymbol` — a named array memory object (the only memory there
  is); loads and stores reference an ArraySymbol plus an index register.

:class:`Label` names join points of the linear code; the CFG builder resolves
them into graph edges.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VirtualReg:
    """A typed virtual register.

    ``name`` is globally unique *within one function*.  ``is_float`` selects
    the register class — the datapath model keeps separate integer and
    floating-point register files, as the TMS320-class processors the paper
    targets do.
    """

    name: str
    is_float: bool = False

    def __str__(self) -> str:
        return self.name

    @property
    def type_name(self) -> str:
        return "float" if self.is_float else "int"


@dataclass(frozen=True)
class Constant:
    """An immediate operand."""

    value: object  # int or float
    is_float: bool = False

    def __post_init__(self):
        if self.is_float:
            object.__setattr__(self, "value", float(self.value))
        else:
            object.__setattr__(self, "value", int(self.value))

    def __str__(self) -> str:
        return repr(self.value)

    @property
    def type_name(self) -> str:
        return "float" if self.is_float else "int"


@dataclass(frozen=True)
class ArraySymbol:
    """A named array memory object.

    Arrays are the only addressable storage in the machine model.  A
    two-dimensional mini-C array is lowered to a one-dimensional ArraySymbol
    with row-major index arithmetic (which is what exposes the address
    ``add-shift``/``add-load`` sequences the paper reports for ``edge``).
    """

    name: str
    size: int
    is_float: bool = False
    is_global: bool = True

    def __str__(self) -> str:
        return f"@{self.name}[{self.size}]"

    @property
    def type_name(self) -> str:
        return "float" if self.is_float else "int"


@dataclass(frozen=True)
class Label:
    """A join-point name in linear three-address code."""

    name: str

    def __str__(self) -> str:
        return f"{self.name}:"
