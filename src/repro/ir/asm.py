"""Textual IR assembler: parse the printer's format back into modules.

The printer (:mod:`repro.ir.printer`) renders three-address code as::

    module kernel
    global int n = 35
    global float h[8] = { 0.5, -0.25 }

    func int main() {
      local float buf[16]
      t0 = load @n[0]
      t1 = cmplt i, t0
      br t1, .body, .exit
    .body:
      f2 = fload @h[i]
      fstore @buf[i], f2
      jmp .head
    .exit:
      ret 0
    }

``parse_module`` accepts that format (with explicit ``{...}`` array
initializers, which the printer abbreviates), so optimizer and analysis
tests can state their input programs directly in IR instead of going
through the mini-C front end.  Register classes (int vs float) are
inferred from opcode signatures; a register used inconsistently is a
:class:`~repro.errors.IRError`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import IRError
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instr import Instruction
from repro.ir.module import Module
from repro.ir.ops import Op, result_type
from repro.ir.values import ArraySymbol, Constant, Label, VirtualReg

_IDENT = r"[A-Za-z_%.][A-Za-z0-9_.%]*"
_NUMBER = r"-?(?:\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?" \
          r"|\d+[eE][-+]?\d+|\d+)"

_GLOBAL_RE = re.compile(
    rf"^global\s+(int|float)\s+({_IDENT})"
    rf"(?:\[(\d+)\])?\s*(?:=\s*(.+))?$")
_FUNC_RE = re.compile(
    rf"^func\s+(int|float|void)\s+({_IDENT})\s*\((.*)\)\s*{{$")
_LOCAL_RE = re.compile(
    rf"^local\s+(int|float)\s+({_IDENT})\[(\d+)\]$")
_LABEL_RE = re.compile(r"^(\.[A-Za-z0-9_.]+):$")
_ASSIGN_RE = re.compile(rf"^({_IDENT})\s*=\s*(.+)$")
_MEMREF_RE = re.compile(rf"^@({_IDENT})\[(.+)\]$")

_OPS_BY_NAME = {op.value: op for op in Op}

# Opcode -> class of each register source ("int"/"float"); None = same as
# the instruction's inferred context (moves, ret).
_INT_SRC = {"add", "sub", "mul", "div", "mod", "neg", "and", "or", "xor",
            "not", "shl", "shr", "cmpeq", "cmpne", "cmplt", "cmple",
            "cmpgt", "cmpge", "itof", "mov"}
_FLOAT_SRC = {"fadd", "fsub", "fmul", "fdiv", "fneg", "fcmpeq", "fcmpne",
              "fcmplt", "fcmple", "fcmpgt", "fcmpge", "ftoi", "fmov"}


class _RegClasses:
    """Infer and check each register's class across the function."""

    def __init__(self, name: str):
        self.fn_name = name
        self.classes: Dict[str, bool] = {}  # name -> is_float

    def reg(self, name: str, is_float: Optional[bool]) -> VirtualReg:
        if is_float is None:
            is_float = self.classes.get(name, False)
        seen = self.classes.get(name)
        if seen is None:
            self.classes[name] = is_float
        elif seen != is_float:
            raise IRError(
                f"{self.fn_name}: register {name!r} used as both int "
                f"and float")
        return VirtualReg(name, is_float)


def _parse_operand(text: str, classes: _RegClasses,
                   is_float: Optional[bool]):
    text = text.strip()
    if re.fullmatch(_NUMBER, text):
        if any(c in text for c in ".eE") and not text.lstrip("-").isdigit():
            return Constant(float(text), True)
        value = int(text)
        if is_float:
            return Constant(float(value), True)
        return Constant(value, False)
    if re.fullmatch(_IDENT, text):
        return classes.reg(text, is_float)
    raise IRError(f"cannot parse operand {text!r}")


def _split_args(text: str) -> List[str]:
    return [part.strip() for part in text.split(",")] if text.strip() \
        else []


class _Assembler:
    def __init__(self, text: str):
        self.lines = [ln.strip() for ln in text.splitlines()]
        self.pos = 0
        self.module = Module()
        self.arrays: Dict[str, ArraySymbol] = {}

    def parse(self) -> Module:
        while self.pos < len(self.lines):
            line = self.lines[self.pos]
            if not line or line.startswith("#") or line.startswith("//"):
                self.pos += 1
            elif line.startswith("module"):
                self.module.name = line.split(None, 1)[1].strip() \
                    if " " in line else "<module>"
                self.pos += 1
            elif line.startswith("global"):
                self._parse_global(line)
                self.pos += 1
            elif line.startswith("func"):
                self._parse_function()
            else:
                raise IRError(f"unexpected top-level line: {line!r}")
        return self.module

    # -- globals ------------------------------------------------------------------

    def _parse_global(self, line: str) -> None:
        match = _GLOBAL_RE.match(line)
        if match is None:
            raise IRError(f"bad global declaration: {line!r}")
        type_name, name, size, init_text = match.groups()
        is_float = type_name == "float"
        init: Optional[List[float]] = None
        if size is None:
            # Scalar: one-element backing array, like the lowering stage.
            value = 0.0
            if init_text is not None:
                value = float(init_text) if is_float else int(init_text)
            symbol = ArraySymbol(name, 1, is_float, is_global=True)
            self.module.add_global_array(symbol, [value])
            self.module.add_global_scalar(name, is_float, value)
            self.arrays[name] = symbol
            return
        if init_text is not None:
            body = init_text.strip()
            if not (body.startswith("{") and body.endswith("}")):
                raise IRError(f"array initializer must be braced: {line!r}")
            items = _split_args(body[1:-1])
            init = [float(v) if is_float else int(v) for v in items]
        symbol = ArraySymbol(name, int(size), is_float, is_global=True)
        self.module.add_global_array(symbol, init)
        self.arrays[name] = symbol

    # -- functions ------------------------------------------------------------------

    def _parse_function(self) -> None:
        match = _FUNC_RE.match(self.lines[self.pos])
        if match is None:
            raise IRError(f"bad function header: "
                          f"{self.lines[self.pos]!r}")
        return_type, name, params_text = match.groups()
        classes = _RegClasses(name)
        params = []
        local_arrays: Dict[str, ArraySymbol] = {}
        for part in _split_args(params_text):
            tokens = part.split()
            if len(tokens) != 2:
                raise IRError(f"bad parameter {part!r} in {name}")
            type_name, pname = tokens
            arr_match = re.fullmatch(rf"({_IDENT})\[(\d*)\]", pname)
            if arr_match is not None:
                aname, asize = arr_match.groups()
                symbol = ArraySymbol(aname, int(asize) if asize else 0,
                                     type_name == "float",
                                     is_global=False)
                params.append(symbol)
                local_arrays[aname] = symbol
            else:
                params.append(classes.reg(pname, type_name == "float"))
        fn = Function(name, params, return_type)
        self.pos += 1

        while True:
            if self.pos >= len(self.lines):
                raise IRError(f"unterminated function {name!r}")
            line = self.lines[self.pos]
            self.pos += 1
            if not line or line.startswith("#") or line.startswith("//"):
                continue
            if line == "}":
                break
            local = _LOCAL_RE.match(line)
            if local is not None:
                type_name, aname, asize = local.groups()
                symbol = ArraySymbol(aname, int(asize),
                                     type_name == "float",
                                     is_global=False)
                fn.local_arrays.append(symbol)
                local_arrays[aname] = symbol
                continue
            label = _LABEL_RE.match(line)
            if label is not None:
                fn.emit(Label(label.group(1)))
                continue
            fn.emit(self._parse_instruction(line, classes, local_arrays))
        self.module.add_function(fn)

    # -- instructions -----------------------------------------------------------------

    def _lookup_array(self, name: str,
                      local_arrays: Dict[str, ArraySymbol]) -> ArraySymbol:
        symbol = local_arrays.get(name) or self.arrays.get(name)
        if symbol is None:
            raise IRError(f"reference to unknown array {name!r}")
        return symbol

    def _parse_instruction(self, line: str, classes: _RegClasses,
                           local_arrays) -> Instruction:
        assign = _ASSIGN_RE.match(line)
        dest_name: Optional[str] = None
        body = line
        if assign is not None and not line.startswith(
                ("br ", "jmp ", "ret", "store ", "fstore ")):
            dest_name, body = assign.groups()

        tokens = body.split(None, 1)
        op_name = tokens[0]
        rest = tokens[1] if len(tokens) > 1 else ""

        if dest_name is not None and op_name in (
                "store", "fstore", "br", "jmp", "ret", "nop"):
            raise IRError(f"{op_name} cannot define a register: {line!r}")

        if op_name in ("store", "fstore"):
            # store @arr[index], value
            ref_text, value_text = [p.strip() for p in rest.split(",", 1)]
            ref = _MEMREF_RE.match(ref_text)
            if ref is None:
                raise IRError(f"bad store reference in {line!r}")
            array = self._lookup_array(ref.group(1), local_arrays)
            index = _parse_operand(ref.group(2), classes, False)
            value = _parse_operand(value_text, classes, array.is_float)
            op = Op.FSTORE if array.is_float else Op.STORE
            if (op is Op.FSTORE) != (op_name == "fstore"):
                raise IRError(f"store kind mismatches array: {line!r}")
            return Instruction(op, srcs=(value, index), array=array)

        if op_name in ("load", "fload"):
            ref = _MEMREF_RE.match(rest.strip())
            if ref is None:
                raise IRError(f"bad load reference in {line!r}")
            array = self._lookup_array(ref.group(1), local_arrays)
            if (array.is_float) != (op_name == "fload"):
                raise IRError(f"load kind mismatches array: {line!r}")
            index = _parse_operand(ref.group(2), classes, False)
            dest = classes.reg(dest_name, array.is_float)
            op = Op.FLOAD if array.is_float else Op.LOAD
            return Instruction(op, dest=dest, srcs=(index,), array=array)

        if op_name == "br":
            cond_text, true_label, false_label = _split_args(rest)
            cond = _parse_operand(cond_text, classes, False)
            return Instruction(Op.BR, srcs=(cond,),
                               true_label=true_label,
                               false_label=false_label)
        if op_name == "jmp":
            return Instruction(Op.JMP, true_label=rest.strip())
        if op_name == "ret":
            if not rest.strip():
                return Instruction(Op.RET)
            value = _parse_operand(rest, classes, None)
            return Instruction(Op.RET, srcs=(value,))

        if op_name in ("call", "intrin"):
            call_match = re.match(rf"({_IDENT})\((.*)\)$", rest.strip())
            if call_match is None:
                raise IRError(f"bad call syntax: {line!r}")
            callee, args_text = call_match.groups()
            args = []
            for arg in _split_args(args_text):
                if arg in self.arrays or arg in local_arrays:
                    args.append(self._lookup_array(arg, local_arrays))
                else:
                    args.append(_parse_operand(arg, classes, None))
            op = Op.CALL if op_name == "call" else Op.INTRIN
            dest = None
            if dest_name is not None:
                dest_float: Optional[bool] = None
                if op is Op.INTRIN:
                    from repro.lang.symbols import INTRINSICS
                    signature = INTRINSICS.get(callee)
                    if signature is not None:
                        dest_float = signature[1].is_float
                else:
                    parsed = self.module.functions.get(callee)
                    if parsed is not None:
                        dest_float = parsed.return_type == "float"
                dest = classes.reg(dest_name, dest_float)
            return Instruction(op, dest=dest, srcs=args, callee=callee)

        op = _OPS_BY_NAME.get(op_name)
        if op is None:
            raise IRError(f"unknown opcode {op_name!r} in {line!r}")
        src_float: Optional[bool]
        if op_name in _INT_SRC:
            src_float = False
        elif op_name in _FLOAT_SRC:
            src_float = True
        else:
            src_float = None
        srcs = tuple(_parse_operand(part, classes, src_float)
                     for part in _split_args(rest))
        dest = None
        if dest_name is not None:
            want = result_type(op)
            if want == "none":
                raise IRError(f"{op_name} cannot define a register: "
                              f"{line!r}")
            dest = classes.reg(dest_name, want == "float")
        return Instruction(op, dest=dest, srcs=srcs)


def parse_module(text: str) -> Module:
    """Assemble textual IR into a :class:`~repro.ir.module.Module`."""
    return _Assembler(text).parse()


def parse_function(text: str) -> Function:
    """Assemble a single ``func ... { }`` block (no module wrapper)."""
    module = _Assembler(text).parse()
    functions = list(module.functions.values())
    if len(functions) != 1:
        raise IRError("parse_function expects exactly one function")
    return functions[0]
