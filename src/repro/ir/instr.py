"""The three-address instruction.

One :class:`Instruction` is one micro-operation of the machine model:
``dest = op(src1, src2)``, a load/store against an :class:`ArraySymbol`,
a move, a branch, or a call.  Instructions carry a process-wide unique ``uid``
so that the profiler, the optimizer and the sequence analyzer can track a
single operation through cloning (loop unrolling duplicates instructions but
preserves their provenance uid in ``origin``).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.errors import IRError
from repro.ir import ops as _ops
from repro.ir.ops import Op
from repro.ir.values import ArraySymbol, Constant, VirtualReg

_uid_counter = itertools.count(1)


def _next_uid() -> int:
    return next(_uid_counter)


class Instruction:
    """A single three-address operation.

    Parameters
    ----------
    op:
        The opcode.
    dest:
        Destination register, or ``None`` for stores / control flow.
    srcs:
        Source operands (registers or constants).  For loads the single
        source is the index; for stores the sources are ``(value, index)``;
        for ``BR`` the single source is the condition register; for calls
        the sources are the arguments.
    array:
        The :class:`ArraySymbol` referenced by a load/store.
    true_label / false_label:
        Branch targets in *linear* code (``BR`` uses both, ``JMP`` uses
        ``true_label``).  The CFG builder resolves these into edges and the
        fields are ignored afterwards.
    callee:
        Function or intrinsic name for ``CALL`` / ``INTRIN``.
    origin:
        uid of the instruction this one was cloned from (defaults to its own
        uid); used to map profile counts onto unrolled loop bodies.
    """

    __slots__ = ("op", "dest", "srcs", "array", "true_label", "false_label",
                 "callee", "uid", "origin", "loc")

    def __init__(
        self,
        op: Op,
        dest: Optional[VirtualReg] = None,
        srcs: Sequence = (),
        array: Optional[ArraySymbol] = None,
        true_label: Optional[str] = None,
        false_label: Optional[str] = None,
        callee: Optional[str] = None,
        origin: Optional[int] = None,
        loc=None,
    ):
        self.op = op
        self.dest = dest
        self.srcs = tuple(srcs)
        self.array = array
        self.true_label = true_label
        self.false_label = false_label
        self.callee = callee
        self.uid = _next_uid()
        self.origin = origin if origin is not None else self.uid
        self.loc = loc
        self._check_shape()

    # -- construction helpers -------------------------------------------------

    def _check_shape(self) -> None:
        op = self.op
        if _ops.is_store(op):
            if self.dest is not None:
                raise IRError(f"store must not have a destination: {self}")
            if self.array is None:
                raise IRError("store requires an array symbol")
            if len(self.srcs) != 2:
                raise IRError("store requires (value, index) sources")
        elif _ops.is_load(op):
            if self.dest is None or self.array is None:
                raise IRError("load requires a destination and an array")
            if len(self.srcs) != 1:
                raise IRError("load requires exactly the index source")
        elif op is Op.BR:
            if len(self.srcs) != 1:
                raise IRError("br requires exactly the condition source")
        elif op in (Op.CALL, Op.INTRIN):
            if self.callee is None:
                raise IRError("call requires a callee name")

    def clone(self, reg_map: Optional[Dict[VirtualReg, VirtualReg]] = None,
              label_map: Optional[Dict[str, str]] = None) -> "Instruction":
        """Copy this instruction, optionally renaming registers and labels.

        The copy receives a fresh ``uid`` but inherits this instruction's
        ``origin``, preserving provenance across loop unrolling.
        """
        reg_map = reg_map or {}
        label_map = label_map or {}

        def map_val(v):
            if isinstance(v, VirtualReg):
                return reg_map.get(v, v)
            return v

        return Instruction(
            self.op,
            dest=map_val(self.dest),
            srcs=[map_val(s) for s in self.srcs],
            array=self.array,
            true_label=label_map.get(self.true_label, self.true_label),
            false_label=label_map.get(self.false_label, self.false_label),
            callee=self.callee,
            origin=self.origin,
            loc=self.loc,
        )

    def with_dest(self, new_dest: VirtualReg) -> "Instruction":
        """Copy this instruction with a different destination register."""
        copy = self.clone()
        copy.dest = new_dest
        return copy

    # -- dataflow accessors ----------------------------------------------------

    def uses(self) -> Tuple[VirtualReg, ...]:
        """Registers read by this instruction (in operand order)."""
        return tuple(s for s in self.srcs if isinstance(s, VirtualReg))

    def defs(self) -> Tuple[VirtualReg, ...]:
        """Registers written by this instruction (empty or a single one)."""
        return (self.dest,) if self.dest is not None else ()

    def replace_uses(self, mapping: Dict[VirtualReg, object]) -> None:
        """Rewrite source operands in place according to *mapping*."""
        self.srcs = tuple(
            mapping.get(s, s) if isinstance(s, VirtualReg) else s
            for s in self.srcs
        )

    # -- predicates ------------------------------------------------------------

    @property
    def kind(self):
        return _ops.kind(self.op)

    @property
    def is_control(self) -> bool:
        return _ops.is_control(self.op)

    @property
    def is_branch(self) -> bool:
        return self.op is Op.BR

    @property
    def is_store(self) -> bool:
        return _ops.is_store(self.op)

    @property
    def is_load(self) -> bool:
        return _ops.is_load(self.op)

    @property
    def is_call(self) -> bool:
        return self.op in (Op.CALL, Op.INTRIN)

    @property
    def has_side_effects(self) -> bool:
        return _ops.has_side_effects(self.op)

    @property
    def chain_class(self) -> Optional[str]:
        return _ops.chain_class(self.op)

    # -- display ----------------------------------------------------------------

    def __repr__(self) -> str:
        from repro.ir.printer import format_instruction
        return f"<{format_instruction(self)} #{self.uid}>"

    def __str__(self) -> str:
        from repro.ir.printer import format_instruction
        return format_instruction(self)


def fresh_uids(instrs: Iterable[Instruction]) -> None:
    """Assign brand-new uids (and origins) to *instrs* — used by tests."""
    for ins in instrs:
        ins_uid = _next_uid()
        ins.uid = ins_uid  # type: ignore[misc]
        ins.origin = ins_uid  # type: ignore[misc]
