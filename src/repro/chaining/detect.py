"""Branch-and-bound detection of chainable operation sequences.

The search walks the program graph exactly as the paper describes: from
every chainable operation it tries to extend a chain into each successor
node, following the data flow (the producer's destination must feed an
operand of the consumer — including address operands, which is how
``add-load`` address chains arise).  Two facts about VLIW node semantics
shape the search:

* operations in the *same* node execute in parallel and can never be
  chained — a chain steps to the **next** cycle at every link;
* a self-edge (a compacted single-node loop body) is a legal step: the
  producer's result of iteration *i* feeds the consumer in iteration
  *i + 1*'s cycle.

The *bound* in branch-and-bound: an extension's occurrence count is the
minimum edge flow along its node path, which is non-increasing as the path
grows — so once the running count drops below ``min_count`` the whole
subtree is pruned.  ``excluded_uids`` supports the paper's §7 coverage
iteration ("ignoring any occurrences of the high-frequency sequence already
found").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.cfg.graph import GraphModule, ProgramGraph
from repro.chaining.frequency import dynamic_frequency, total_op_executions
from repro.chaining.sequence import (DetectedSequence, Occurrence,
                                     SequenceName, sequence_label)
from repro.ir.instr import Instruction
from repro.sim.profile import ProfileData

DEFAULT_LENGTHS = (2, 3, 4, 5)


@dataclass
class DetectionStats:
    """Search-effort accounting (proof the bound actually prunes)."""

    starts: int = 0
    extensions_explored: int = 0
    subtrees_pruned: int = 0
    occurrences_found: int = 0


@dataclass
class DetectionResult:
    """Everything found in one module at one optimization level."""

    module_name: str
    lengths: Tuple[int, ...]
    total_ops: int
    sequences: Dict[int, Dict[SequenceName, DetectedSequence]] = \
        field(default_factory=dict)
    stats: DetectionStats = field(default_factory=DetectionStats)
    # instruction uid -> dynamic executions (caps frequency attribution).
    exec_counts: Dict[int, int] = field(default_factory=dict)

    def add_occurrence(self, name: SequenceName, occ: Occurrence) -> None:
        by_name = self.sequences.setdefault(len(name), {})
        seq = by_name.get(name)
        if seq is None:
            seq = by_name[name] = DetectedSequence(name)
        seq.add(occ)
        self.stats.occurrences_found += 1

    def all_sequences(self, length: Optional[int] = None
                      ) -> List[DetectedSequence]:
        if length is not None:
            return list(self.sequences.get(length, {}).values())
        result: List[DetectedSequence] = []
        for by_name in self.sequences.values():
            result.extend(by_name.values())
        return result

    def attributed_cycles(self, name: SequenceName) -> int:
        """Execution time (op-slots) attributed to one sequence.

        Occurrence paths of the same sequence may overlap (one producer
        feeding two consumers yields two paths sharing the producer), so
        each instruction's attribution is capped at its actual dynamic
        execution count — an executed operation counts at most once per
        sequence, keeping every frequency at or below 100%.
        """
        seq = self.sequences.get(len(name), {}).get(tuple(name))
        if seq is None:
            return 0
        per_uid: Dict[int, int] = {}
        for occ in seq.occurrences:
            for uid in occ.uids:
                per_uid[uid] = per_uid.get(uid, 0) + occ.count
        return sum(
            min(total, self.exec_counts.get(uid, total))
            for uid, total in per_uid.items()
        )

    def frequency(self, name: SequenceName) -> float:
        """Dynamic frequency (%) of one sequence name (0.0 if absent)."""
        return dynamic_frequency(self.attributed_cycles(name),
                                 self.total_ops)

    def top(self, length: int, limit: Optional[int] = None
            ) -> List[Tuple[SequenceName, float]]:
        """Sequences of *length* sorted by decreasing frequency."""
        rows = [
            (seq.name, self.frequency(seq.name))
            for seq in self.sequences.get(length, {}).values()
        ]
        rows.sort(key=lambda item: (-item[1], item[0]))
        return rows[:limit] if limit is not None else rows

    def __repr__(self) -> str:
        total = sum(len(v) for v in self.sequences.values())
        return (f"<DetectionResult {self.module_name}: {total} sequences, "
                f"{self.stats.occurrences_found} occurrences>")


class SequenceDetector:
    """Branch-and-bound search over every function graph of a module."""

    def __init__(self, module: GraphModule, profile: ProfileData,
                 lengths: Sequence[int] = DEFAULT_LENGTHS,
                 min_count: int = 1,
                 excluded_uids: Optional[Set[int]] = None):
        if not lengths:
            raise ValueError("lengths must be non-empty")
        if min(lengths) < 2:
            raise ValueError("chains have at least two operations")
        self.module = module
        self.profile = profile
        self.lengths = tuple(sorted(set(lengths)))
        self.max_length = max(self.lengths)
        self.min_count = max(1, min_count)
        self.excluded = excluded_uids or set()
        self.result = DetectionResult(
            module_name=module.name,
            lengths=self.lengths,
            total_ops=total_op_executions(profile, module),
            exec_counts=profile.instruction_counts(module),
        )

    # -- public ---------------------------------------------------------------------

    def detect(self) -> DetectionResult:
        for fn_name, graph in self.module.graphs.items():
            if self.profile.call_counts.get(fn_name, 0) == 0:
                continue  # never executed: no dynamic frequency
            self._detect_in_graph(fn_name, graph)
        return self.result

    # -- search ---------------------------------------------------------------------

    def _detect_in_graph(self, fn_name: str, graph: ProgramGraph) -> None:
        edge_count = self.profile.edge_counts.get(fn_name, {})
        node_count = self.profile.node_counts.get(fn_name, {})
        # Per-node index: register name -> chainable consumers reading it.
        consumers: Dict[int, Dict[str, List[Instruction]]] = {}
        for nid, node in graph.nodes.items():
            index: Dict[str, List[Instruction]] = {}
            for ins in node.ops:
                if ins.chain_class is None or ins.uid in self.excluded:
                    continue
                for reg in ins.uses():
                    index.setdefault(reg.name, []).append(ins)
            consumers[nid] = index

        for nid, node in graph.nodes.items():
            if node_count.get(nid, 0) < self.min_count:
                continue
            for ins in node.ops:
                if ins.chain_class is None or ins.dest is None \
                        or ins.uid in self.excluded:
                    continue
                self.result.stats.starts += 1
                start_bound = node_count.get(nid, 0)
                self._extend(fn_name, graph, edge_count, consumers,
                             path=[(nid, ins)], bound=start_bound)

    def _extend(self, fn_name: str, graph: ProgramGraph, edge_count,
                consumers, path: List[Tuple[int, Instruction]],
                bound: int) -> None:
        nid, producer = path[-1]
        if producer.dest is None:
            return  # stores terminate a chain
        depth = len(path)
        if depth >= self.max_length:
            return
        dest_name = producer.dest.name
        for succ in dict.fromkeys(graph.nodes[nid].succs):
            flow = edge_count.get((nid, succ), 0)
            new_bound = min(bound, flow)
            if new_bound < self.min_count:
                self.result.stats.subtrees_pruned += 1
                continue
            for consumer in consumers[succ].get(dest_name, ()):  # data flow
                if any(consumer is ins for _, ins in path):
                    continue  # an op appears once per chain
                self.result.stats.extensions_explored += 1
                path.append((succ, consumer))
                if depth + 1 in self.lengths:
                    self._record(fn_name, path, new_bound)
                self._extend(fn_name, graph, edge_count, consumers, path,
                             new_bound)
                path.pop()

    def _record(self, fn_name: str, path: List[Tuple[int, Instruction]],
                count: int) -> None:
        name = tuple(ins.chain_class for _, ins in path)
        occ = Occurrence(
            function=fn_name,
            path=tuple((nid, ins.uid) for nid, ins in path),
            count=count,
        )
        self.result.add_occurrence(name, occ)


def detect_sequences(module: GraphModule, profile: ProfileData,
                     lengths: Sequence[int] = DEFAULT_LENGTHS,
                     min_count: int = 1,
                     excluded_uids: Optional[Set[int]] = None
                     ) -> DetectionResult:
    """Convenience wrapper around :class:`SequenceDetector`."""
    detector = SequenceDetector(module, profile, lengths, min_count,
                                excluded_uids)
    return detector.detect()
