"""Sequence identity and occurrence records.

A sequence is identified by the tuple of *chain classes* of its operations —
the paper's vocabulary: ``("multiply", "add")`` prints as ``multiply-add``,
``("fload", "fmultiply")`` as ``fload-fmultiply``.  Distinct code sites whose
operations share the same class tuple are occurrences of the same sequence,
exactly as the paper aggregates them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

SequenceName = Tuple[str, ...]


def sequence_label(name: SequenceName) -> str:
    """Render a class tuple the way the paper prints it."""
    return "-".join(name)


@dataclass(frozen=True)
class Occurrence:
    """One concrete site of a sequence in one function graph.

    ``path`` pairs each step with its (node id, instruction uid); ``count``
    is the number of times control flowed along the whole node path (the
    minimum of the traversal counts of its edges).
    """

    function: str
    path: Tuple[Tuple[int, int], ...]  # ((node_id, instruction_uid), ...)
    count: int

    @property
    def length(self) -> int:
        return len(self.path)

    @property
    def uids(self) -> Tuple[int, ...]:
        return tuple(uid for _, uid in self.path)

    @property
    def nodes(self) -> Tuple[int, ...]:
        return tuple(nid for nid, _ in self.path)


@dataclass
class DetectedSequence:
    """All occurrences of one sequence name at one length."""

    name: SequenceName
    occurrences: List[Occurrence] = field(default_factory=list)

    @property
    def label(self) -> str:
        return sequence_label(self.name)

    @property
    def length(self) -> int:
        return len(self.name)

    @property
    def total_count(self) -> int:
        """Total dynamic traversals across all sites."""
        return sum(occ.count for occ in self.occurrences)

    @property
    def cycles_accounted(self) -> int:
        """Operation-slots of execution time attributed to this sequence."""
        return self.total_count * self.length

    @property
    def site_count(self) -> int:
        return len(self.occurrences)

    def add(self, occurrence: Occurrence) -> None:
        if len(occurrence.path) != self.length:
            raise ValueError(
                f"occurrence length {len(occurrence.path)} does not match "
                f"sequence {self.label!r}")
        self.occurrences.append(occurrence)

    def __repr__(self) -> str:
        return (f"<DetectedSequence {self.label}: {self.site_count} sites, "
                f"count {self.total_count}>")
