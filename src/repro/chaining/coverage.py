"""Iterative sequence-coverage analysis (paper §7).

"We used the sequence detection analyzer tool to iteratively uncover the
sequences with the highest frequency.  Once the sequence with the highest
frequency was found ..., the sequence detection analyzer tool was run again,
this time ignoring any occurrences of the high-frequency sequence already
found.  This process continued iteratively until no sequences of any
significant percentage were left."

Coverage is charged without double counting: each chosen sequence consumes
the instruction uids of its occurrences, and its contribution is the share
of dynamic operation executions those instructions account for.  The sum of
contributions — the *coverage* — is therefore a true "fraction of executed
operations that would run inside chained instructions".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cfg.graph import GraphModule
from repro.chaining.detect import DEFAULT_LENGTHS, SequenceDetector
from repro.chaining.frequency import (dynamic_frequency,
                                      total_op_executions,
                                      uid_execution_counts)
from repro.chaining.sequence import SequenceName, sequence_label
from repro.sim.profile import ProfileData


@dataclass
class CoverageStep:
    """One greedy pick of the iterative analysis."""

    name: SequenceName
    frequency: float        # detector frequency at pick time (%)
    contribution: float     # non-overlapping coverage contribution (%)
    sites: int

    @property
    def label(self) -> str:
        return sequence_label(self.name)


@dataclass
class CoverageReport:
    """Outcome of the iterative coverage analysis for one benchmark."""

    module_name: str
    steps: List[CoverageStep] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Total coverage (%) of the chosen sequence set."""
        return sum(step.contribution for step in self.steps)

    @property
    def sequence_count(self) -> int:
        return len(self.steps)

    def names(self) -> List[str]:
        return [step.label for step in self.steps]

    def __repr__(self) -> str:
        return (f"<CoverageReport {self.module_name}: "
                f"{self.sequence_count} sequences, "
                f"{self.coverage:.2f}% coverage>")


def analyze_coverage(module: GraphModule, profile: ProfileData,
                     lengths: Sequence[int] = DEFAULT_LENGTHS,
                     threshold: float = 4.0,
                     max_sequences: int = 12) -> CoverageReport:
    """Run the paper's iterative max-frequency coverage analysis.

    Picks sequences greedily by dynamic frequency until the best remaining
    one falls below *threshold* percent (the paper drops "sequences of any
    significant percentage", reporting entries down to ~4-5%) or
    *max_sequences* were chosen.
    """
    report = CoverageReport(module_name=module.name)
    consumed: Set[int] = set()
    total_ops = total_op_executions(profile, module)
    if total_ops == 0:
        return report
    exec_counts = uid_execution_counts(profile, module)

    for _ in range(max_sequences):
        detector = SequenceDetector(module, profile, lengths,
                                    excluded_uids=consumed)
        result = detector.detect()
        best = None
        best_freq = 0.0
        for seq in result.all_sequences():
            freq = dynamic_frequency(result.attributed_cycles(seq.name),
                                     total_ops)
            if freq > best_freq or (best is not None
                                    and freq == best_freq
                                    and seq.name < best.name):
                best, best_freq = seq, freq
        if best is None or best_freq < threshold:
            break
        uids: Set[int] = set()
        for occ in best.occurrences:
            uids.update(occ.uids)
        covered_ops = sum(exec_counts.get(uid, 0) for uid in uids)
        report.steps.append(CoverageStep(
            name=best.name,
            frequency=best_freq,
            contribution=dynamic_frequency(covered_ops, total_ops),
            sites=best.site_count,
        ))
        consumed |= uids
    return report
