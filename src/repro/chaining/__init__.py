"""Chainable-sequence analysis — the paper's core contribution (step 4).

Given an optimized program graph and its execution profile, the detector
finds every *chainable operation sequence*: a path of data-flow-connected
operations in consecutive machine cycles ("data is passed directly from one
operation to the next"), each weighted by the dynamic frequency — the share
of execution time it accounts for.  The coverage analyzer (paper §7) then
greedily picks non-overlapping high-frequency sequences, measuring how much
of the workload a small set of chained instructions would cover.
"""

from repro.chaining.sequence import (Occurrence, DetectedSequence,
                                     sequence_label)
from repro.chaining.detect import (DetectionResult, DetectionStats,
                                   SequenceDetector, detect_sequences)
from repro.chaining.frequency import dynamic_frequency, total_op_executions
from repro.chaining.coverage import CoverageReport, CoverageStep, \
    analyze_coverage
from repro.chaining.aggregate import CombinedSequences, combine_results

__all__ = [
    "Occurrence",
    "DetectedSequence",
    "sequence_label",
    "DetectionResult",
    "DetectionStats",
    "SequenceDetector",
    "detect_sequences",
    "dynamic_frequency",
    "total_op_executions",
    "CoverageReport",
    "CoverageStep",
    "analyze_coverage",
    "CombinedSequences",
    "combine_results",
]
