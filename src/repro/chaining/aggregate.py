"""Cross-benchmark aggregation (paper §6.1).

"This information was collected by performing sequence detection for each
individual benchmark, and then combining the results of all the benchmarks
together."  The combined dynamic frequency of a sequence weights each
benchmark by its share of the suite's total dynamic operations:

    combined(s) = Σ_b cycles_accounted(s, b) / Σ_b total_ops(b) × 100

so a sequence dominating a long-running benchmark matters more than one
dominating a tiny stream filter — the natural reading of "percentage of
execution time" over a combined workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaining.detect import DetectionResult
from repro.chaining.sequence import SequenceName, sequence_label


@dataclass
class CombinedSequences:
    """Suite-wide sequence frequencies for one optimization level."""

    total_ops: int = 0
    # name -> summed cycles accounted across benchmarks
    cycles: Dict[SequenceName, int] = field(default_factory=dict)
    benchmarks: List[str] = field(default_factory=list)

    def frequency(self, name: SequenceName) -> float:
        if self.total_ops == 0:
            return 0.0
        return 100.0 * self.cycles.get(tuple(name), 0) / self.total_ops

    def top(self, length: Optional[int] = None,
            limit: Optional[int] = None
            ) -> List[Tuple[SequenceName, float]]:
        """Sequences sorted by decreasing combined frequency."""
        rows = [
            (name, 100.0 * acc / self.total_ops)
            for name, acc in self.cycles.items()
            if length is None or len(name) == length
        ]
        rows.sort(key=lambda item: (-item[1], item[0]))
        return rows[:limit] if limit is not None else rows

    def series(self, length: int) -> List[float]:
        """The frequency curve of paper Figures 3/4: sorted descending."""
        return [freq for _, freq in self.top(length)]


def combine_results(results: Sequence[Tuple[str, DetectionResult]]
                    ) -> CombinedSequences:
    """Combine per-benchmark detection results into suite-wide numbers."""
    combined = CombinedSequences()
    for bench_name, result in results:
        combined.benchmarks.append(bench_name)
        combined.total_ops += result.total_ops
        for seq in result.all_sequences():
            key = tuple(seq.name)
            combined.cycles[key] = (combined.cycles.get(key, 0)
                                    + result.attributed_cycles(seq.name))
    return combined


@dataclass
class FrontierChain:
    """One chain's suite-wide standing across benchmark frontiers.

    The design-space reading of the paper's §6.1 fold: instead of "how
    often does this sequence *occur* across the suite", it answers "on
    how many benchmarks' cost/performance frontiers does this chain
    actually *pay off*" — with the same dynamic-ops weighting, so a
    chain winning on long-running benchmarks outranks one winning on
    tiny stream filters.
    """

    name: SequenceName
    #: Benchmarks on whose frontier the chain appears (a winning design
    #: at some budget includes it), in suite order.
    benchmarks: List[str] = field(default_factory=list)
    #: Σ_b cycles_accounted(chain, b) over *all* aggregated benchmarks
    #: (frontier member or not) — the numerator of the §6.1 frequency.
    cycles_accounted: int = 0
    #: Suite dynamic operations (the shared denominator).
    suite_ops: int = 0

    @property
    def label(self) -> str:
        return sequence_label(self.name)

    @property
    def frontier_count(self) -> int:
        return len(self.benchmarks)

    @property
    def combined_frequency(self) -> float:
        """Suite-wide dynamic frequency (%), §6.1 weighting: every
        benchmark contributes by its share of suite dynamic ops."""
        if self.suite_ops == 0:
            return 0.0
        return 100.0 * self.cycles_accounted / self.suite_ops

    def reason(self, suite_size: int) -> str:
        """Human-readable justification for the report row."""
        benches = ", ".join(self.benchmarks)
        return (f"on {self.frontier_count} of {suite_size} frontiers "
                f"({benches}); {self.combined_frequency:.2f}% of suite "
                f"dynamic ops")


def combine_frontier_chains(
        entries: Sequence[Tuple[str, int, Dict[SequenceName, int],
                                Sequence[SequenceName]]]
) -> List[FrontierChain]:
    """Fold per-benchmark frontiers into the suite-wide chain ranking.

    Each entry is ``(benchmark, total dynamic ops, {chain pattern ->
    cycles accounted by the analysis}, patterns on the benchmark's
    frontier)``.  Every chain that made *some* frontier gets one row;
    its combined frequency sums its accounted cycles over **all**
    entries (exactly :func:`combine_results`' weighting — a benchmark
    where the chain is frequent but never wins still contributes
    weight), while ``benchmarks`` records only true frontier
    membership.  Sorted most-shared first, then by combined frequency.
    """
    suite_ops = sum(total_ops for _, total_ops, _, _ in entries)
    chains: Dict[SequenceName, FrontierChain] = {}
    for bench_name, _total_ops, _cycles, frontier in entries:
        for pattern in frontier:
            chain = chains.get(tuple(pattern))
            if chain is None:
                chain = chains[tuple(pattern)] = FrontierChain(
                    name=tuple(pattern), suite_ops=suite_ops)
            chain.benchmarks.append(bench_name)
    for _bench_name, _total_ops, cycles, _frontier in entries:
        for pattern, accounted in cycles.items():
            chain = chains.get(tuple(pattern))
            if chain is not None:
                chain.cycles_accounted += accounted
    rows = list(chains.values())
    rows.sort(key=lambda c: (-c.frontier_count, -c.combined_frequency,
                             c.name))
    return rows
