"""Cross-benchmark aggregation (paper §6.1).

"This information was collected by performing sequence detection for each
individual benchmark, and then combining the results of all the benchmarks
together."  The combined dynamic frequency of a sequence weights each
benchmark by its share of the suite's total dynamic operations:

    combined(s) = Σ_b cycles_accounted(s, b) / Σ_b total_ops(b) × 100

so a sequence dominating a long-running benchmark matters more than one
dominating a tiny stream filter — the natural reading of "percentage of
execution time" over a combined workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaining.detect import DetectionResult
from repro.chaining.sequence import SequenceName, sequence_label


@dataclass
class CombinedSequences:
    """Suite-wide sequence frequencies for one optimization level."""

    total_ops: int = 0
    # name -> summed cycles accounted across benchmarks
    cycles: Dict[SequenceName, int] = field(default_factory=dict)
    benchmarks: List[str] = field(default_factory=list)

    def frequency(self, name: SequenceName) -> float:
        if self.total_ops == 0:
            return 0.0
        return 100.0 * self.cycles.get(tuple(name), 0) / self.total_ops

    def top(self, length: Optional[int] = None,
            limit: Optional[int] = None
            ) -> List[Tuple[SequenceName, float]]:
        """Sequences sorted by decreasing combined frequency."""
        rows = [
            (name, 100.0 * acc / self.total_ops)
            for name, acc in self.cycles.items()
            if length is None or len(name) == length
        ]
        rows.sort(key=lambda item: (-item[1], item[0]))
        return rows[:limit] if limit is not None else rows

    def series(self, length: int) -> List[float]:
        """The frequency curve of paper Figures 3/4: sorted descending."""
        return [freq for _, freq in self.top(length)]


def combine_results(results: Sequence[Tuple[str, DetectionResult]]
                    ) -> CombinedSequences:
    """Combine per-benchmark detection results into suite-wide numbers."""
    combined = CombinedSequences()
    for bench_name, result in results:
        combined.benchmarks.append(bench_name)
        combined.total_ops += result.total_ops
        for seq in result.all_sequences():
            key = tuple(seq.name)
            combined.cycles[key] = (combined.cycles.get(key, 0)
                                    + result.attributed_cycles(seq.name))
    return combined
