"""Dynamic-frequency accounting.

The paper reports each sequence's *dynamic frequency*: "the percentage of
execution time for which that sequence accounts as calculated from the
profile information".  We charge each occurrence ``count × length``
operation-slots and divide by the total number of dynamically executed
operations (control transfers excluded).  Using operation executions rather
than machine cycles keeps the denominator comparable across optimization
levels — compaction shrinks cycles but not work — so level-to-level changes
in a sequence's frequency reflect *detection*, which is what the paper's
Tables 2-3 compare.
"""

from __future__ import annotations

from typing import Dict

from repro.cfg.graph import GraphModule
from repro.sim.profile import ProfileData


def total_op_executions(profile: ProfileData, module: GraphModule) -> int:
    """Dynamic operation executions across every function of *module*."""
    return profile.total_op_executions(module)


def dynamic_frequency(cycles_accounted: int, total_ops: int) -> float:
    """Percentage of execution time accounted by ``cycles_accounted``."""
    if total_ops <= 0:
        return 0.0
    return 100.0 * cycles_accounted / total_ops


def uid_execution_counts(profile: ProfileData,
                         module: GraphModule) -> Dict[int, int]:
    """Executions per instruction uid (used by the coverage analyzer)."""
    return profile.instruction_counts(module)
