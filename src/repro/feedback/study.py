"""Run the paper's full experimental matrix.

A *study* is: for each selected benchmark, run optimization levels 0/1/2,
profile each on the Table-1 inputs, verify levels 1/2 against level 0's
outputs (semantic preservation oracle), run sequence detection at lengths
2–5, and keep everything for the reporting layer.

An *exploration study* (:func:`run_exploration_study`) is the design-
space counterpart: the full benchmark × area-budget matrix of the
paper's estimate-then-measure ASIP loop, executed by
:mod:`repro.exec.explore` on the same persistent pool (per-benchmark
base simulation first, then that benchmark's budget cells fan out), with
``jobs=N`` bit-identical to ``jobs=1`` and to per-benchmark
:func:`~repro.asip.explore.explore_designs` calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.chaining.aggregate import (CombinedSequences, FrontierChain,
                                      combine_frontier_chains,
                                      combine_results)
from repro.chaining.coverage import CoverageReport, analyze_coverage
from repro.chaining.detect import DEFAULT_LENGTHS, DetectionResult
from repro.errors import ReproError
from repro.opt.pipeline import OptLevel
from repro.sim.machine import DEFAULT_ENGINE
from repro.suite.registry import BenchmarkSpec, all_benchmarks, get_benchmark
from repro.suite.runner import BenchmarkRun, compile_benchmark, run_benchmark


@dataclass(frozen=True)
class StudyConfig:
    """Knobs of one study run."""

    benchmarks: Optional[Tuple[str, ...]] = None  # None = whole suite
    levels: Tuple[int, ...] = (0, 1, 2)
    lengths: Tuple[int, ...] = DEFAULT_LENGTHS
    seed: int = 0
    unroll_factor: int = 2
    verify: bool = True
    engine: str = DEFAULT_ENGINE  # simulation engine (compiled/reference)
    #: Input seeds batched through each compiled cell; ``None`` keeps the
    #: single-seed behavior (``seed``).  The first entry is primary.
    seeds: Optional[Tuple[int, ...]] = None
    #: Worker processes for the benchmark×level matrix.  ``None`` defers
    #: to ``$REPRO_JOBS`` (default 1 = today's serial path, guaranteed
    #: bit-identical); ``0`` means one worker per core.
    jobs: Optional[int] = None


@dataclass
class BenchmarkStudy:
    """One benchmark across all levels."""

    spec: BenchmarkSpec
    runs: Dict[OptLevel, BenchmarkRun] = field(default_factory=dict)

    def run_at(self, level) -> BenchmarkRun:
        return self.runs[OptLevel(level)]

    def detection_at(self, level) -> DetectionResult:
        return self.run_at(level).detection

    def cycles_at(self, level) -> int:
        return self.run_at(level).cycles


@dataclass
class StudyResult:
    """The full matrix plus aggregation helpers."""

    config: StudyConfig
    benchmarks: Dict[str, BenchmarkStudy] = field(default_factory=dict)

    def benchmark(self, name: str) -> BenchmarkStudy:
        try:
            return self.benchmarks[name]
        except KeyError:
            raise ReproError(f"study has no benchmark {name!r}")

    def names(self) -> List[str]:
        return list(self.benchmarks)

    def combined(self, level) -> CombinedSequences:
        """Suite-wide sequence frequencies at one level (paper §6.1)."""
        level = OptLevel(level)
        pairs = [(name, bs.detection_at(level))
                 for name, bs in self.benchmarks.items()]
        return combine_results(pairs)

    def coverage(self, name: str, level,
                 threshold: float = 4.0,
                 lengths: Optional[Sequence[int]] = None,
                 max_sequences: int = 12) -> CoverageReport:
        """Iterative coverage analysis (paper §7) for one benchmark."""
        run = self.benchmark(name).run_at(level)
        return analyze_coverage(
            run.graph_module, run.profile,
            lengths=lengths or self.config.lengths,
            threshold=threshold, max_sequences=max_sequences)


@dataclass(frozen=True)
class ExplorationStudyConfig:
    """Knobs of one suite-wide design-space exploration."""

    benchmarks: Optional[Tuple[str, ...]] = None  # None = whole suite
    #: Area budgets explored per benchmark (duplicates collapsed).
    budgets: Tuple[int, ...] = (2500,)
    #: Optimization level the exploration compiles at.
    level: int = 1
    #: Sequence lengths considered for chaining.
    lengths: Tuple[int, ...] = (2, 3)
    seed: int = 0
    #: Input seeds every design point is measured on; ``None`` keeps the
    #: single-seed behavior (``seed``).  The first entry is primary
    #: (it feeds profiling and sequence detection); measured speedups
    #: aggregate cycle totals over all seeds.  Large seed lists shard
    #: across workers like study cells.
    seeds: Optional[Tuple[int, ...]] = None
    unroll_factor: int = 2
    max_candidates: int = 8
    measure_top: int = 4
    engine: str = DEFAULT_ENGINE
    #: Worker processes for the benchmark×budget matrix (``None`` defers
    #: to ``$REPRO_JOBS``, ``0`` = all cores; any value bit-identical).
    jobs: Optional[int] = None


@dataclass
class ExplorationStudyResult:
    """Every (benchmark, budget) exploration of one study."""

    config: ExplorationStudyConfig
    #: ``(benchmark name, area budget) -> ExplorationResult``.
    explorations: Dict[Tuple[str, int], "ExplorationResult"] = \
        field(default_factory=dict)

    def exploration(self, name: str, budget: int) -> "ExplorationResult":
        try:
            return self.explorations[(name, int(budget))]
        except KeyError:
            raise ReproError(
                f"exploration study has no cell ({name!r}, {budget})")

    def names(self) -> List[str]:
        return list(dict.fromkeys(name for name, _ in self.explorations))

    def budgets(self) -> List[int]:
        return list(dict.fromkeys(b for _, b in self.explorations))

    def best(self, name: str, budget: int):
        """The measured winner of one cell (``None`` if nothing viable)."""
        return self.exploration(name, budget).best

    def summary_rows(self) -> List[Dict[str, object]]:
        """One flat record per cell (CLI table / JSON export)."""
        rows: List[Dict[str, object]] = []
        for (name, budget), exploration in self.explorations.items():
            best = exploration.best
            rows.append({
                "benchmark": name,
                "budget": budget,
                "candidates": len(exploration.candidates),
                "measured": len(exploration.measured),
                "best_speedup": best.speedup if best else None,
                "best_area": best.area if best else None,
                "best_chains": best.labels() if best else [],
            })
        return rows


@dataclass(frozen=True)
class FrontierStudyConfig:
    """Knobs of one suite-wide incremental frontier sweep.

    The frontier counterpart of :class:`ExplorationStudyConfig`: no
    budget grid — one sweep per benchmark answers *every* budget (up to
    ``max_budget``, when set) — otherwise the same knobs with the same
    defaults, so a frontier study and a budget study over the same
    configuration answer identically on shared budgets.
    """

    benchmarks: Optional[Tuple[str, ...]] = None  # None = whole suite
    #: Optimization level the exploration compiles at.
    level: int = 1
    #: Sequence lengths considered for chaining.
    lengths: Tuple[int, ...] = (2, 3)
    seed: int = 0
    #: Input seeds every design point is measured on (see
    #: :class:`ExplorationStudyConfig.seeds`).
    seeds: Optional[Tuple[int, ...]] = None
    unroll_factor: int = 2
    max_candidates: int = 8
    measure_top: int = 4
    #: Budget ceiling for the sweep.  ``None`` walks the whole pool, so
    #: any budget is answerable; a ceiling caps the breakpoint count
    #: (and the measurement work) when only a budget range matters —
    #: queries beyond it raise instead of answering wrong.
    max_budget: Optional[int] = None
    engine: str = DEFAULT_ENGINE
    #: Worker processes (``None`` defers to ``$REPRO_JOBS``, ``0`` = all
    #: cores; any value bit-identical).
    jobs: Optional[int] = None


@dataclass
class BenchmarkFrontier:
    """One benchmark's swept frontier plus its measured breakpoints."""

    name: str
    frontier: "Frontier"
    #: Deduplicated finalist chain set -> its measured design point
    #: (covers every combo of every segment).
    designs: Dict[Tuple, "DesignPoint"] = field(default_factory=dict)
    #: The benchmark's dynamic operation count — its weight in the
    #: suite-wide aggregation.
    total_ops: int = 0

    def breakpoints(self) -> List[int]:
        return self.frontier.breakpoints()

    def result_at(self, budget: int) -> "ExplorationResult":
        """The exact :class:`~repro.asip.explore.ExplorationResult` a
        per-budget exploration of *budget* would produce, answered by
        bisection into the swept segments."""
        from repro.asip.explore import ExplorationResult
        segment = self.frontier.segment_at(budget)
        if segment is None:
            return ExplorationResult(candidates=[])
        result = ExplorationResult(
            candidates=self.frontier.candidates_at(budget))
        for patterns in self.frontier.segment_patterns(segment):
            result.measured.append(self.designs[patterns])
        return result

    def best_at(self, budget: int):
        """The measured winner at *budget* (``None`` if nothing fits)."""
        return self.result_at(budget).best

    def points(self) -> List[Tuple[int, "DesignPoint"]]:
        """The cost/performance curve: ``(breakpoint budget, winner)``
        per segment, ascending budget (no-candidate segments skipped)."""
        rows = []
        for segment in self.frontier.segments:
            best = self.result_at(segment.budget).best
            if best is not None:
                rows.append((segment.budget, best))
        return rows

    def frontier_patterns(self) -> List[Tuple]:
        """Chain patterns appearing in some budget's *winning* design —
        the chains that actually pay off somewhere on this frontier."""
        seen: Dict[Tuple, None] = {}
        for _budget, best in self.points():
            for chain in best.isa.chains:
                seen.setdefault(tuple(chain.pattern), None)
        return list(seen)


@dataclass
class FrontierResult:
    """Every benchmark's frontier from one sweep study."""

    config: FrontierStudyConfig
    benchmarks: Dict[str, BenchmarkFrontier] = field(default_factory=dict)

    def frontier(self, name: str) -> BenchmarkFrontier:
        try:
            return self.benchmarks[name]
        except KeyError:
            raise ReproError(f"frontier study has no benchmark {name!r}")

    def names(self) -> List[str]:
        return list(self.benchmarks)

    def result_at(self, name: str, budget: int) -> "ExplorationResult":
        """Answer one (benchmark, budget) query from the swept frontier
        — bit-identical to the corresponding ``explore-study`` cell."""
        return self.frontier(name).result_at(budget)

    def suite_chains(self) -> List[FrontierChain]:
        """Cross-benchmark aggregation (paper §6.1 applied to design):
        which chains appear on multiple benchmarks' frontiers, weighted
        by each benchmark's share of suite dynamic operations."""
        entries = []
        for name, bench in self.benchmarks.items():
            cycles = {tuple(c.pattern): c.cycles_accounted
                      for c in bench.frontier.pool}
            entries.append((name, bench.total_ops, cycles,
                            bench.frontier_patterns()))
        return combine_frontier_chains(entries)

    def summary_rows(self) -> List[Dict[str, object]]:
        """One flat record per (benchmark, breakpoint) — CLI/JSON
        export, mirroring ``ExplorationStudyResult.summary_rows``."""
        rows: List[Dict[str, object]] = []
        for name, bench in self.benchmarks.items():
            for budget, best in bench.points():
                rows.append({
                    "benchmark": name,
                    "budget": budget,
                    "speedup": best.speedup,
                    "area": best.area,
                    "chains": best.labels(),
                })
        return rows


ProgressFn = Callable[[str, int], None]


# -- front-loaded validation -------------------------------------------------------
#
# Shared by the run_* entry points and the serve daemon's protocol
# layer, so a malformed request fails before any compile, worker spawn
# or socket dispatch, attributed to the knob it came from.


def validate_study_config(config: StudyConfig) -> None:
    """Raise :class:`~repro.errors.ReproError` on a malformed config."""
    from repro.sim.machine import ensure_engine
    from repro.suite.runner import validate_seeds
    ensure_engine(config.engine)
    validate_seeds(config.seeds, source="StudyConfig.seeds")
    for level in config.levels:
        try:
            OptLevel(level)
        except ValueError:
            raise ReproError(
                f"StudyConfig.levels contains {level!r}: not an "
                f"optimization level (expected 0, 1 or 2)")


def validate_exploration_config(config: ExplorationStudyConfig) -> None:
    """Raise :class:`~repro.errors.ReproError` on a malformed config."""
    from repro.sim.machine import ensure_engine
    from repro.suite.runner import validate_seeds
    ensure_engine(config.engine)
    validate_seeds(config.seeds, source="ExplorationStudyConfig.seeds")
    if not config.budgets:
        raise ReproError(
            "ExplorationStudyConfig.budgets is empty: pass at least one "
            "area budget (e.g. budgets=(2500,))")
    for budget in config.budgets:
        if budget <= 0:
            raise ReproError(
                f"ExplorationStudyConfig.budgets contains {budget}: area "
                f"budgets must be positive")
    try:
        OptLevel(config.level)
    except ValueError:
        raise ReproError(
            f"ExplorationStudyConfig.level={config.level!r} is not an "
            f"optimization level (expected 0, 1 or 2)")


def validate_frontier_config(config: FrontierStudyConfig) -> None:
    """Raise :class:`~repro.errors.ReproError` on a malformed config."""
    from repro.sim.machine import ensure_engine
    from repro.suite.runner import validate_seeds
    ensure_engine(config.engine)
    validate_seeds(config.seeds, source="FrontierStudyConfig.seeds")
    if config.max_budget is not None and config.max_budget <= 0:
        raise ReproError(
            f"FrontierStudyConfig.max_budget={config.max_budget}: the "
            f"sweep ceiling must be positive (or None for unbounded)")
    try:
        OptLevel(config.level)
    except ValueError:
        raise ReproError(
            f"FrontierStudyConfig.level={config.level!r} is not an "
            f"optimization level (expected 0, 1 or 2)")


# -- the whole-result tier ---------------------------------------------------------


def result_request_key(op: str, config) -> str:
    """The whole-result disk-tier digest for one ``run_*`` call.

    Keys over the operation, every config knob except ``jobs`` (``jobs=N``
    is bit-identical to ``jobs=1`` by the executors' contract, so the
    worker count must not partition results), the resolved benchmark
    names each paired with a digest of its registered source, and
    :func:`~repro.sim.diskcache.result_source_token` — an edit to any
    toolchain source, a different seed list or a re-registered benchmark
    all key differently, while the same question asked twice (daemon or
    warm CLI, any worker count) keys identically.
    """
    import dataclasses
    import hashlib
    from repro.sim.diskcache import result_source_token
    fields = dataclasses.asdict(config)
    fields.pop("jobs", None)
    names = (list(dict.fromkeys(config.benchmarks))
             if config.benchmarks is not None
             else [spec.name for spec in all_benchmarks()])
    fields["benchmarks"] = [
        (name,
         hashlib.sha256(get_benchmark(name).source.encode()).hexdigest())
        for name in names]
    blob = f"{op}|{result_source_token()}|{sorted(fields.items())!r}"
    return hashlib.sha256(blob.encode()).hexdigest()


def _result_tier(op: str, config):
    """``(cache, key)`` when the whole-result tier applies, else
    ``(None, None)``.  The tier is opt-in
    (:data:`~repro.sim.diskcache.RESULT_ENV_VAR`) on top of an enabled
    disk cache; the serve daemon turns it on for its process."""
    from repro.sim.diskcache import get_cache, result_cache_enabled
    if not result_cache_enabled():
        return None, None
    cache = get_cache()
    if cache is None:
        return None, None
    return cache, result_request_key(op, config)


def _load_cached_result(cache, key: str, result_type):
    """A stored whole result of the expected type, or ``None``.

    A payload of the wrong type (a stale or colliding entry) is
    reclassified as corrupt via the guarded
    :meth:`~repro.sim.diskcache.DiskCache.unusable` and regenerated.
    """
    from repro.sim.diskcache import RESULT_KIND
    cached = cache.load(RESULT_KIND, key)
    if cached is None:
        return None
    if not isinstance(cached, result_type):
        cache.unusable(RESULT_KIND)
        return None
    return cached


def _store_result(cache, key: str, result) -> None:
    from repro.sim.diskcache import RESULT_KIND
    cache.store(RESULT_KIND, key, result)


def run_study(config: StudyConfig = StudyConfig(),
              progress: Optional[ProgressFn] = None,
              stats=None) -> StudyResult:
    """Execute the study described by *config*.

    With an effective ``jobs`` of 1 (the default) this is the serial
    reference path.  ``jobs > 1`` dispatches the benchmark×level matrix
    to :func:`repro.exec.study.execute_study`, which schedules cells on a
    process pool (level 0 first per benchmark — it is the semantic
    oracle — then levels 1/2 fan out) and produces bit-identical results.

    With the whole-result tier on (:data:`~repro.sim.diskcache.
    RESULT_ENV_VAR`), a repeat of a previously answered config returns
    the stored result from disk — no compile, no simulation; ``progress``
    does not fire on such a hit.  ``stats`` (a
    :class:`~repro.exec.scheduler.ScheduleStats`) collects scheduler
    accounting on the parallel path.
    """
    from repro.exec.pool import resolve_jobs
    validate_study_config(config)
    cache, key = _result_tier("study", config)
    if cache is not None:
        cached = _load_cached_result(cache, key, StudyResult)
        if cached is not None:
            cached.config = config  # the stored twin differs in jobs only
            return cached
    jobs = resolve_jobs(config.jobs)
    if jobs > 1:
        from repro.exec.study import execute_study
        result = execute_study(config, jobs=jobs, progress=progress,
                               stats=stats)
        if cache is not None:
            _store_result(cache, key, result)
        return result

    names = (list(config.benchmarks) if config.benchmarks is not None
             else [spec.name for spec in all_benchmarks()])
    result = StudyResult(config=config)
    for name in names:
        spec = get_benchmark(name)
        module = compile_benchmark(spec)
        study = BenchmarkStudy(spec=spec)
        reference = None
        for level in sorted(config.levels):
            if progress is not None:
                progress(name, level)
            run = run_benchmark(
                spec, OptLevel(level),
                lengths=config.lengths,
                seed=config.seed,
                seeds=config.seeds,
                unroll_factor=config.unroll_factor,
                check_against=reference if config.verify else None,
                module=module,
                engine=config.engine,
            )
            if level == 0 and config.verify:
                reference = (run.seed_results if len(run.seeds) > 1
                             else run.machine_result)
            study.runs[OptLevel(level)] = run
        result.benchmarks[name] = study
    if cache is not None:
        _store_result(cache, key, result)
    return result


#: ``progress(benchmark, stage)`` for exploration studies; stage is
#: ``"base"`` or ``"budget N"``.
ExploreProgressFn = Callable[[str, str], None]


def run_exploration_study(
        config: ExplorationStudyConfig = ExplorationStudyConfig(),
        progress: Optional[ExploreProgressFn] = None,
        stats=None) -> ExplorationStudyResult:
    """Execute the suite-wide design-space exploration.

    Every (benchmark, budget) cell produces exactly the
    :class:`~repro.asip.explore.ExplorationResult` a standalone
    ``explore_designs(module, inputs, area_budget=budget, ...)`` call
    would (multi-seed configurations aggregate each design point's
    cycles over all seeds), but the matrix runs as dependency tasks on
    the persistent worker pool: each benchmark's base-processor
    simulation gates its budget cells, different benchmarks proceed
    independently, and large seed lists shard across workers.  Results
    are bit-identical for any ``jobs`` value.

    The whole-result tier and ``stats`` behave exactly as on
    :func:`run_study`.
    """
    from repro.exec.explore import execute_exploration_study
    from repro.exec.pool import resolve_jobs
    validate_exploration_config(config)
    cache, key = _result_tier("explore-study", config)
    if cache is not None:
        cached = _load_cached_result(cache, key, ExplorationStudyResult)
        if cached is not None:
            cached.config = config
            return cached
    jobs = resolve_jobs(config.jobs)
    result = execute_exploration_study(config, jobs=jobs,
                                       progress=progress, stats=stats)
    if cache is not None:
        _store_result(cache, key, result)
    return result


def run_frontier_study(
        config: FrontierStudyConfig = FrontierStudyConfig(),
        progress: Optional[ExploreProgressFn] = None,
        stats=None) -> FrontierResult:
    """Execute one incremental Pareto-frontier sweep per benchmark.

    Where :func:`run_exploration_study` re-ranks the candidate pool per
    budget cell, this walks each benchmark's pool once in breakpoint
    order, measures each distinct finalist chain set exactly once (per
    seed shard), and returns a :class:`FrontierResult` whose
    ``result_at(name, budget)`` answers *any* budget by bisection —
    bit-identical to the ``explore-study`` cell for that budget (pinned
    by ``tests/test_frontier.py``).  Results are identical for any
    ``jobs`` value.

    The whole-result tier and ``stats`` behave exactly as on
    :func:`run_study`.
    """
    from repro.exec.explore import execute_frontier_study
    from repro.exec.pool import resolve_jobs
    validate_frontier_config(config)
    cache, key = _result_tier("frontier", config)
    if cache is not None:
        cached = _load_cached_result(cache, key, FrontierResult)
        if cached is not None:
            cached.config = config
            return cached
    jobs = resolve_jobs(config.jobs)
    result = execute_frontier_study(config, jobs=jobs, progress=progress,
                                    stats=stats)
    if cache is not None:
        _store_result(cache, key, result)
    return result
