"""Plain-data summaries of study results.

``study_summary`` flattens a :class:`~repro.feedback.study.StudyResult`
into JSON-serializable dictionaries — what EXPERIMENTS.md records and what
downstream tooling (plotting, regression tracking) consumes.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.feedback.study import StudyResult
from repro.chaining.sequence import sequence_label
from repro.opt.pipeline import OptLevel


def study_summary(study: StudyResult, top_n: int = 10) -> Dict:
    """Flatten *study* into plain dicts (JSON-ready)."""
    summary: Dict = {
        "config": {
            "levels": list(study.config.levels),
            "lengths": list(study.config.lengths),
            "seed": study.config.seed,
            "unroll_factor": study.config.unroll_factor,
        },
        "benchmarks": {},
        "combined": {},
    }
    for name, bench in study.benchmarks.items():
        entry: Dict = {"levels": {}}
        for level, run in bench.runs.items():
            detection = run.detection
            entry["levels"][int(level)] = {
                "cycles": run.cycles,
                "total_ops": detection.total_ops,
                "nodes": run.graph_module.total_nodes(),
                "top_sequences": {
                    str(length): [
                        {"name": sequence_label(seq_name),
                         "frequency": round(freq, 4)}
                        for seq_name, freq in detection.top(length, top_n)
                    ]
                    for length in study.config.lengths
                },
            }
        summary["benchmarks"][name] = entry
    for level in study.config.levels:
        combined = study.combined(level)
        summary["combined"][int(level)] = {
            str(length): [
                {"name": sequence_label(seq_name),
                 "frequency": round(freq, 4)}
                for seq_name, freq in combined.top(length, top_n)
            ]
            for length in study.config.lengths
        }
    return summary


def summary_to_json(study: StudyResult, top_n: int = 10, **kwargs) -> str:
    """JSON text of :func:`study_summary` (stable key order)."""
    kwargs.setdefault("indent", 2)
    kwargs.setdefault("sort_keys", True)
    return json.dumps(study_summary(study, top_n), **kwargs)
