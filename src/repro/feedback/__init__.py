"""The end-to-end framework driver (paper Figure 2).

:func:`repro.feedback.study.run_study` runs the whole experimental matrix —
every benchmark at every optimization level, with profiling, semantic
checking and sequence detection — and returns a :class:`StudyResult` from
which every table and figure of the paper regenerates.
"""

from repro.feedback.study import (BenchmarkStudy, StudyConfig, StudyResult,
                                  run_study)
from repro.feedback.results import study_summary

__all__ = [
    "BenchmarkStudy",
    "StudyConfig",
    "StudyResult",
    "run_study",
    "study_summary",
]
