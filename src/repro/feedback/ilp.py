"""Instruction-level-parallelism characterization of the suite.

The paper's closing direction (§8): "we are interested in providing
feedback on the use of multiple-issue instruction-set architectures by
characterizing the instruction level parallelism of an application suite
using compiler optimizations."  This module does exactly that: for every
benchmark and optimization level it reports dynamic ILP — operations
executed per machine cycle — plus the speedup each level buys over the
sequential schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.feedback.study import StudyResult
from repro.opt.pipeline import OptLevel
from repro.reporting.tables import render_table


@dataclass(frozen=True)
class IlpRow:
    """One (benchmark, level) measurement."""

    benchmark: str
    level: int
    cycles: int
    operations: int
    ilp: float
    speedup: float  # over the same benchmark at level 0

    @property
    def level_label(self) -> str:
        return OptLevel(self.level).label


def characterize_ilp(study: StudyResult) -> List[IlpRow]:
    """Dynamic ILP of every benchmark at every level of *study*."""
    rows: List[IlpRow] = []
    for name, bench in study.benchmarks.items():
        base_cycles = None
        for level in sorted(int(l) for l in bench.runs):
            run = bench.run_at(level)
            profile = run.profile
            cycles = profile.total_cycles()
            operations = profile.total_op_executions(run.graph_module)
            if base_cycles is None:
                base_cycles = cycles
            rows.append(IlpRow(
                benchmark=name,
                level=level,
                cycles=cycles,
                operations=operations,
                ilp=(operations / cycles) if cycles else 0.0,
                speedup=(base_cycles / cycles) if cycles else 0.0,
            ))
    return rows


def render_ilp_table(rows: List[IlpRow]) -> str:
    """ASCII table of the ILP characterization."""
    table_rows = []
    for row in rows:
        table_rows.append((
            row.benchmark,
            row.level,
            row.cycles,
            row.operations,
            f"{row.ilp:.2f}",
            f"{row.speedup:.2f}x",
        ))
    return render_table(
        ("Benchmark", "Level", "Cycles", "Operations", "ILP", "Speedup"),
        table_rows,
        title="ILP characterization (ops/cycle per optimization level)")


def suite_ilp_summary(rows: List[IlpRow]) -> dict:
    """Per-level aggregate ILP over the whole suite (cycle-weighted)."""
    by_level: dict = {}
    for row in rows:
        acc = by_level.setdefault(row.level,
                                  {"cycles": 0, "operations": 0})
        acc["cycles"] += row.cycles
        acc["operations"] += row.operations
    return {
        level: acc["operations"] / acc["cycles"] if acc["cycles"] else 0.0
        for level, acc in sorted(by_level.items())
    }
