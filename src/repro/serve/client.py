"""Synchronous client for the repro service.

The counterpart of :mod:`repro.serve.daemon` for tests, scripts and the
CI smoke job: connect, send JSON-line requests, read JSON-line
responses.  :func:`wait_for_server` polls until a freshly launched
daemon accepts connections.  ``python -m repro.serve.client --socket S
'{"op": "status"}'`` is the one-shot command-line form.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Optional

from repro.errors import ReproError


class ServeClient:
    """One connection to a running daemon (usable as a context
    manager).  Requests on one connection are answered in order."""

    def __init__(self, socket_path: Optional[str] = None,
                 host: str = "127.0.0.1", port: Optional[int] = None,
                 timeout: float = 600.0):
        if socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            try:
                sock.connect(str(socket_path))
            except OSError:
                sock.close()
                raise
        elif port is not None:
            sock = socket.create_connection((host, port),
                                            timeout=timeout)
            sock.settimeout(timeout)
        else:
            raise ReproError(
                "ServeClient needs a socket path or a TCP port")
        self._sock = sock
        self._file = sock.makefile("rb")

    def request_raw(self, request: dict) -> bytes:
        """Send one request, return the raw response line (newline
        stripped) — the form the bit-identity tests compare."""
        self._sock.sendall(json.dumps(request).encode("utf-8") + b"\n")
        line = self._file.readline()
        if not line:
            raise ReproError("repro serve closed the connection")
        return line.rstrip(b"\n")

    def request(self, request: dict) -> dict:
        """Send one request, return the decoded response object."""
        return json.loads(self.request_raw(request).decode("utf-8"))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def wait_for_server(socket_path: Optional[str] = None,
                    host: str = "127.0.0.1",
                    port: Optional[int] = None,
                    timeout: float = 30.0,
                    interval: float = 0.05) -> ServeClient:
    """Poll until the daemon accepts a connection; returns the
    connected client (the CI smoke job's startup handshake)."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            return ServeClient(socket_path=socket_path, host=host,
                               port=port)
        except (OSError, ReproError):
            if time.monotonic() >= deadline:
                where = socket_path or f"{host}:{port}"
                raise ReproError(
                    f"no repro serve daemon answered at {where} "
                    f"within {timeout:.0f}s")
            time.sleep(interval)


def main(argv=None) -> int:
    """One request from the command line; exits 0 iff ``ok``."""
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.client",
        description="send one JSON request to a repro serve daemon")
    parser.add_argument("--socket", default=None,
                        help="Unix socket path the daemon listens on")
    parser.add_argument("--port", type=int, default=None,
                        help="local TCP port the daemon listens on")
    parser.add_argument("--wait", action="store_true",
                        help="poll until the daemon accepts connections")
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument("request", help="the JSON request object")
    args = parser.parse_args(argv)
    request = json.loads(args.request)
    if args.wait:
        client = wait_for_server(socket_path=args.socket,
                                 port=args.port, timeout=args.timeout)
    else:
        client = ServeClient(socket_path=args.socket, port=args.port,
                             timeout=args.timeout)
    try:
        response = client.request(request)
    finally:
        client.close()
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("ok") else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
