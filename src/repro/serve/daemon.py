"""The repro service daemon.

An asyncio front end over the toolchain: requests arrive as JSON lines
(:mod:`repro.serve.protocol`), are validated on the event loop, and are
evaluated on **one** dedicated executor thread — evaluations are
CPU-bound and the toolchain's process-global state (the persistent
worker pool, its epoch counter, the per-worker compile memos, the disk-
cache handle) is built for one driver at a time.  Parallelism across
cores comes from each evaluation's own ``jobs`` knob fanning out onto
the process pool, not from overlapping evaluations; the loop itself
stays free to answer ``status``, coalesce duplicates and take new
connections while an evaluation runs.

Two layers keep repeated questions cheap:

* **in-flight deduplication** — concurrent requests with the same
  canonical digest coalesce onto the first one's evaluation.  The
  shared future resolves to the final *response bytes*, so every
  coalesced client receives the bit-identical line, and the evaluation
  runs exactly once (``dedup_coalesced`` counts the riders).
* **the whole-result cache tier** — study-family ops go through
  :mod:`repro.feedback.study`'s result tier (the daemon process enables
  it via ``REPRO_RESULT_CACHE``; the CLI sets that up), so a repeat of
  an answered config — same daemon, a restarted one, or a warm CLI run
  — is served from disk with zero simulator invocations.  ``analyze``
  and ``explore`` responses are cached at the serve layer under the
  request digest salted with the toolchain source token.  While a
  request evaluates, its result-tier entry is **pinned** — the LRU
  eviction sweep (:meth:`repro.sim.diskcache.DiskCache.evict_to_cap`)
  never reclaims an entry a live request is about to read or write.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ReproError
from repro.exec.pool import pool_status, shutdown_pool
from repro.exec.scheduler import ScheduleStats
from repro.feedback import study as study_api
from repro.serve import protocol
from repro.sim import diskcache


def _encode(obj: dict) -> bytes:
    """One response line (no newline).  ``sort_keys`` makes the
    encoding a pure function of the payload, which is what lets dedup
    hand every coalesced client bit-identical bytes."""
    return json.dumps(obj, sort_keys=True).encode("utf-8")


def _simple_result_key(digest: str) -> str:
    """Serve-layer result key for analyze/explore: the request digest
    salted with the toolchain source token, so editing any
    ``src/repro`` module invalidates served answers exactly like
    study-family results."""
    blob = f"{digest}|{diskcache.result_source_token()}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class ServeStats:
    """The daemon's cumulative request accounting."""

    requests: int = 0           # lines answered (status/shutdown too)
    errors: int = 0             # requests answered with ok=false
    dispatches: int = 0         # evaluations entered (post-dedup)
    dedup_coalesced: int = 0    # requests riding another's evaluation
    result_hits: int = 0        # dispatches answered by the result tier
    result_misses: int = 0      # dispatches that actually evaluated
    evaluation_seconds: float = 0.0
    tasks_executed: int = 0     # scheduler tasks across all evaluations
    max_tasks_in_flight: int = 0

    @property
    def evaluations(self) -> int:
        """Dispatches that ran the toolchain (result hits excluded)."""
        return self.dispatches - self.result_hits

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "dispatches": self.dispatches,
            "dedup_coalesced": self.dedup_coalesced,
            "evaluations": self.evaluations,
            "result_hits": self.result_hits,
            "result_misses": self.result_misses,
            "evaluation_seconds": self.evaluation_seconds,
            "tasks_executed": self.tasks_executed,
            "max_tasks_in_flight": self.max_tasks_in_flight,
        }


class ReproServer:
    """``repro serve``: the socket daemon (one instance per process).

    Listens on a Unix socket (*socket_path*) or a local TCP port
    (*host*/*port*; port 0 picks a free one, recorded in
    :attr:`bound_port` once listening).  *jobs* is the default worker
    count for requests that leave ``jobs`` null.
    """

    def __init__(self, socket_path: Optional[str] = None,
                 host: str = "127.0.0.1", port: Optional[int] = None,
                 jobs: Optional[int] = None):
        if socket_path is None and port is None:
            raise ReproError(
                "repro serve needs a socket path or a TCP port")
        self.socket_path = str(socket_path) if socket_path else None
        self.host = host
        self.port = port
        self.bound_port: Optional[int] = None
        self.default_jobs = jobs
        self.stats = ServeStats()
        self._inflight: Dict[str, asyncio.Future] = {}
        self._handlers: set = set()
        self._writers: set = set()
        self._active = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-eval")
        self._t0 = time.monotonic()

    # -- lifecycle ---------------------------------------------------------------

    def run(self) -> None:
        """Serve until a ``shutdown`` request drains the connections."""
        asyncio.run(self._serve())

    def run_in_thread(self, timeout: float = 30.0) -> threading.Thread:
        """Start :meth:`run` on a daemon thread; returns once
        listening (tests and embedding)."""
        thread = threading.Thread(target=self.run, name="repro-serve",
                                  daemon=True)
        thread.start()
        if not self._started.wait(timeout):
            raise ReproError("repro serve failed to start listening")
        return thread

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        if self.socket_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_client, path=self.socket_path)
        else:
            server = await asyncio.start_server(
                self._handle_client, self.host, self.port or 0)
        for sock in server.sockets:
            name = sock.getsockname()
            if isinstance(name, tuple) and len(name) >= 2:
                self.bound_port = name[1]
        self._started.set()
        try:
            async with server:
                await self._stop.wait()
            # Close lingering connections and let their handlers run to
            # completion: an abrupt loop teardown would cancel them mid-
            # await and log spurious tracebacks.
            for writer in list(self._writers):
                writer.close()
            if self._handlers:
                await asyncio.wait(set(self._handlers), timeout=5.0)
        finally:
            self._executor.shutdown(wait=True)
            shutdown_pool()
            if self.socket_path is not None:
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass
            self._started.clear()

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._handlers.add(task)
        self._writers.add(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                # _active spans handling *and* the write-back, so a
                # drain-then-stop shutdown never cuts off a response.
                self._active += 1
                try:
                    blob = await self._respond(line)
                    writer.write(blob + b"\n")
                    await writer.drain()
                finally:
                    self._active -= 1
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _drain_then_stop(self) -> None:
        while self._active:
            await asyncio.sleep(0.02)
        self._stop.set()

    # -- request handling --------------------------------------------------------

    async def _respond(self, line: bytes) -> bytes:
        self.stats.requests += 1
        try:
            request = protocol.parse_request(line)
        except ReproError as exc:
            self.stats.errors += 1
            return _encode({"ok": False, "error": str(exc)})
        op = request["op"]
        if op == "status":
            return _encode({"ok": True, "op": "status",
                            "result": self.status_payload()})
        if op == "shutdown":
            asyncio.ensure_future(self._drain_then_stop())
            return _encode({"ok": True, "op": "shutdown",
                            "result": {"stopping": True}})
        digest = protocol.request_digest(request)
        inflight = self._inflight.get(digest)
        if inflight is not None:
            self.stats.dedup_coalesced += 1
            return await inflight
        future = self._loop.create_future()
        self._inflight[digest] = future
        try:
            blob = await self._evaluate_request(request, digest)
        except ReproError as exc:
            self.stats.errors += 1
            blob = _encode({"ok": False, "op": op, "digest": digest,
                            "error": str(exc)})
        except Exception as exc:  # keep the daemon up on surprises
            self.stats.errors += 1
            blob = _encode({"ok": False, "op": op, "digest": digest,
                            "error": f"internal error: {exc}"})
        finally:
            self._inflight.pop(digest, None)
        future.set_result(blob)
        return blob

    async def _evaluate_request(self, request: dict,
                                digest: str) -> bytes:
        """Validate, key, pin, dispatch to the evaluation thread."""
        op = request["op"]
        default_jobs = self.default_jobs
        if op in ("study", "explore-study", "frontier"):
            config = protocol.build_config(request,
                                           default_jobs=default_jobs)
            result_key = study_api.result_request_key(op, config)

            def evaluate():
                state, before = _tier_state()
                sched = ScheduleStats()
                if op == "study":
                    payload = protocol.study_payload(
                        study_api.run_study(config, stats=sched))
                elif op == "explore-study":
                    payload = protocol.exploration_payload(
                        study_api.run_exploration_study(config,
                                                        stats=sched))
                else:
                    payload = protocol.frontier_payload(
                        study_api.run_frontier_study(config,
                                                     stats=sched))
                return payload, sched, _tier_outcome(state, before)
        else:  # analyze / explore
            protocol.validate_simple_request(request)
            result_key = _simple_result_key(digest)

            def evaluate():
                state, before = _tier_state()
                payload = _serve_cached_payload(
                    result_key,
                    lambda: (_run_analyze(request) if op == "analyze"
                             else _run_explore(request, default_jobs)))
                return payload, None, _tier_outcome(state, before)

        cache = diskcache.get_cache()
        pinned = cache is not None and diskcache.result_cache_enabled()
        if pinned:
            cache.pin(diskcache.RESULT_KIND, result_key)
        self.stats.dispatches += 1
        started = time.monotonic()
        try:
            payload, sched, tier = await self._loop.run_in_executor(
                self._executor, evaluate)
        finally:
            if pinned:
                cache.unpin(diskcache.RESULT_KIND, result_key)
        self.stats.evaluation_seconds += time.monotonic() - started
        if sched is not None:
            self.stats.tasks_executed += sched.executed
            self.stats.max_tasks_in_flight = max(
                self.stats.max_tasks_in_flight, sched.max_in_flight)
        if tier == "hit":
            self.stats.result_hits += 1
        elif tier == "miss":
            self.stats.result_misses += 1
        return _encode({"ok": True, "op": op, "digest": digest,
                        "result": payload,
                        "meta": {"result_cache": tier}})

    def status_payload(self) -> dict:
        """The ``status`` op's answer (also ``repro serve --status``)."""
        cache = diskcache.get_cache()
        try:
            cap = diskcache.resolve_max_bytes(strict=True)
        except ReproError as exc:
            cap = str(exc)
        return {
            "uptime_seconds": time.monotonic() - self._t0,
            "inflight": len(self._inflight),
            "stats": self.stats.snapshot(),
            "pool": pool_status(),
            "result_cache_enabled": diskcache.result_cache_enabled(),
            "cache_max_bytes": cap,
            "cache": (cache.stats_snapshot()
                      if cache is not None else None),
        }


# -- evaluation-thread helpers -----------------------------------------------------
#
# These run on the single executor thread, which serializes them — the
# hit-counter deltas below are race-free because nothing else touches
# the cache counters between a _tier_state() and its _tier_outcome().


def _tier_state():
    """``(tier_on, result-hit count before the evaluation)``."""
    cache = diskcache.get_cache()
    if cache is None or not diskcache.result_cache_enabled():
        return False, 0
    return True, cache.hits[diskcache.RESULT_KIND]


def _tier_outcome(tier_on: bool, before: int) -> str:
    if not tier_on:
        return "off"
    cache = diskcache.get_cache()
    if cache is not None \
            and cache.hits[diskcache.RESULT_KIND] > before:
        return "hit"
    return "miss"


def _serve_cached_payload(result_key: str, compute) -> dict:
    """The serve-layer result tier for analyze/explore payload dicts."""
    cache = diskcache.get_cache()
    tier_on = cache is not None and diskcache.result_cache_enabled()
    if tier_on:
        stored = cache.load(diskcache.RESULT_KIND, result_key)
        if isinstance(stored, dict):
            return stored
        if stored is not None:  # wrong type: stale/colliding entry
            cache.unusable(diskcache.RESULT_KIND)
    payload = compute()
    if tier_on:
        cache.store(diskcache.RESULT_KIND, result_key, payload)
    return payload


def _run_analyze(request: dict) -> dict:
    from repro.chaining.coverage import analyze_coverage
    from repro.chaining.detect import detect_sequences
    from repro.cli import _random_inputs
    from repro.frontend import compile_source
    from repro.opt.pipeline import OptLevel, optimize_module
    from repro.sim.machine import run_module
    name = request["name"]
    module = compile_source(request["source"], name, filename=name)
    graph_module, _ = optimize_module(module, OptLevel(request["level"]))
    inputs = _random_inputs(module, request["seed"])
    result = run_module(graph_module, inputs, engine=request["engine"])
    lengths = tuple(request["lengths"])
    detection = detect_sequences(graph_module, result.profile, lengths)
    report = analyze_coverage(graph_module, result.profile,
                              lengths=lengths,
                              threshold=request["threshold"])
    return protocol.analyze_payload(request, result, detection, report)


def _run_explore(request: dict,
                 default_jobs: Optional[int] = None) -> dict:
    from repro.asip.explore import explore_designs
    from repro.opt.pipeline import OptLevel
    from repro.suite.registry import get_benchmark
    from repro.suite.runner import compile_benchmark
    spec = get_benchmark(request["benchmark"])
    module = compile_benchmark(spec)
    inputs = spec.generate_inputs(request["seed"])
    jobs = request["jobs"]
    if jobs is None:
        jobs = default_jobs
    result = explore_designs(
        module, inputs, area_budget=request["budget"],
        level=OptLevel(request["level"]),
        lengths=tuple(request["lengths"]),
        max_candidates=request["max_candidates"],
        measure_top=request["measure_top"],
        unroll_factor=request["unroll_factor"],
        engine=request["engine"], jobs=jobs)
    return protocol.explore_payload(result)
