"""Repro-as-a-service: the socket front end over the toolchain.

``python -m repro serve --socket PATH`` (or ``--port N``) starts a
long-lived daemon that answers analyze / study / explore /
explore-study / frontier requests as JSON lines over a local socket —
the warm-process home the persistent worker pool, the per-worker
compile memos and the disk cache were built for.  See
:mod:`repro.serve.protocol` for the wire format,
:mod:`repro.serve.daemon` for the server (in-flight request
deduplication, the whole-result cache tier, status accounting) and
:mod:`repro.serve.client` for the small synchronous client the tests
and the CI smoke job drive it with.
"""

from repro.serve.client import ServeClient, wait_for_server
from repro.serve.daemon import ReproServer, ServeStats

__all__ = ["ReproServer", "ServeClient", "ServeStats", "wait_for_server"]
