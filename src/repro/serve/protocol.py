"""Wire protocol of the repro service.

Requests and responses are JSON objects, one per line (newline-
terminated UTF-8), over a Unix or local TCP socket.  Every request
carries an ``"op"`` naming the operation; the remaining fields are
op-specific knobs mirroring the CLI flags, all optional except where
noted.

The load-bearing idea is the **canonical request**: every request is
normalized — unknown ops and fields rejected, types checked, every
omitted knob materialized with its default — before anything else
happens.  Two requests that ask the same question (one spelling out
``"seed": 0``, one omitting it) canonicalize to the same dict, so their
:func:`request_digest` matches and the daemon's in-flight deduplication
and serve-level result cache treat them as one.  Field *order* never
matters: the digest hashes the sorted-keys JSON encoding.

Study-family requests (``study`` / ``explore-study`` / ``frontier``)
additionally build the corresponding :mod:`repro.feedback.study` config
via :func:`build_config`, running the same front-loaded validators the
library entry points run — a malformed request fails with a named-knob
message before any compile or worker spawn.

The payload builders at the bottom produce exactly the JSON shapes the
CLI's ``--json`` exports produce (the CLI calls them too), so a served
answer and a ``python -m repro ... --json`` answer to the same question
are interchangeable documents.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Dict, Tuple

from repro.chaining.detect import DEFAULT_LENGTHS
from repro.errors import ReproError
from repro.sim.machine import DEFAULT_ENGINE

#: Sentinel default for fields a request must spell out.
_REQUIRED = object()


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _int(op: str, name: str, value):
    if not _is_int(value):
        raise ReproError(f"{op} request field {name!r} must be an "
                         f"integer, got {value!r}")
    return value


def _opt_int(op: str, name: str, value):
    return None if value is None else _int(op, name, value)


def _number(op: str, name: str, value):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ReproError(f"{op} request field {name!r} must be a "
                         f"number, got {value!r}")
    return float(value)


def _bool(op: str, name: str, value):
    if not isinstance(value, bool):
        raise ReproError(f"{op} request field {name!r} must be a "
                         f"boolean, got {value!r}")
    return value


def _str(op: str, name: str, value):
    if not isinstance(value, str):
        raise ReproError(f"{op} request field {name!r} must be a "
                         f"string, got {value!r}")
    return value


def _int_list(op: str, name: str, value):
    if not isinstance(value, list) or not value \
            or not all(_is_int(item) for item in value):
        raise ReproError(f"{op} request field {name!r} must be a "
                         f"non-empty list of integers, got {value!r}")
    return list(value)


def _opt_int_list(op: str, name: str, value):
    return None if value is None else _int_list(op, name, value)


def _opt_str_list(op: str, name: str, value):
    if value is None:
        return None
    if not isinstance(value, list) \
            or not all(isinstance(item, str) for item in value):
        raise ReproError(f"{op} request field {name!r} must be a list "
                         f"of strings (or null), got {value!r}")
    return list(value) or None


_FieldSpec = Dict[str, Tuple[object, Callable]]

#: Per-op field tables: ``field -> (default, type coercer)``.  Defaults
#: match the CLI flags and the feedback-layer config dataclasses, so an
#: empty request means exactly what the bare CLI command means.
_REQUEST_FIELDS: Dict[str, _FieldSpec] = {
    "analyze": {
        "source": (_REQUIRED, _str),
        "name": ("<request>", _str),
        "level": (1, _int),
        "lengths": ([2, 3, 4, 5], _int_list),
        "seed": (0, _int),
        "threshold": (4.0, _number),
        "engine": (DEFAULT_ENGINE, _str),
    },
    "explore": {
        "benchmark": (_REQUIRED, _str),
        "budget": (2500, _int),
        "level": (1, _int),
        "lengths": ([2, 3], _int_list),
        "seed": (0, _int),
        "max_candidates": (8, _int),
        "measure_top": (4, _int),
        "unroll_factor": (2, _int),
        "engine": (DEFAULT_ENGINE, _str),
        "jobs": (None, _opt_int),
    },
    "study": {
        "benchmarks": (None, _opt_str_list),
        "levels": ([0, 1, 2], _int_list),
        "lengths": (list(DEFAULT_LENGTHS), _int_list),
        "seed": (0, _int),
        "seeds": (None, _opt_int_list),
        "unroll_factor": (2, _int),
        "verify": (True, _bool),
        "engine": (DEFAULT_ENGINE, _str),
        "jobs": (None, _opt_int),
    },
    "explore-study": {
        "benchmarks": (None, _opt_str_list),
        "budgets": ([2500], _int_list),
        "level": (1, _int),
        "lengths": ([2, 3], _int_list),
        "seed": (0, _int),
        "seeds": (None, _opt_int_list),
        "unroll_factor": (2, _int),
        "max_candidates": (8, _int),
        "measure_top": (4, _int),
        "engine": (DEFAULT_ENGINE, _str),
        "jobs": (None, _opt_int),
    },
    "frontier": {
        "benchmarks": (None, _opt_str_list),
        "level": (1, _int),
        "lengths": ([2, 3], _int_list),
        "seed": (0, _int),
        "seeds": (None, _opt_int_list),
        "unroll_factor": (2, _int),
        "max_candidates": (8, _int),
        "measure_top": (4, _int),
        "max_budget": (None, _opt_int),
        "engine": (DEFAULT_ENGINE, _str),
        "jobs": (None, _opt_int),
    },
    "status": {},
    "shutdown": {},
}

REQUEST_OPS: Tuple[str, ...] = tuple(_REQUEST_FIELDS)

#: Ops that dispatch an evaluation (dedup + result tier apply).
EVAL_OPS: Tuple[str, ...] = ("analyze", "explore", "study",
                             "explore-study", "frontier")


def canonical_request(data: dict) -> dict:
    """Normalize one decoded request to its canonical form.

    Rejects unknown ops and unknown fields by name, type-checks every
    provided field, and materializes every omitted field's default —
    the returned dict always carries the complete knob set, so the
    digest of two equivalent requests matches regardless of which
    defaults each spelled out.
    """
    op = data.get("op")
    if not isinstance(op, str) or op not in _REQUEST_FIELDS:
        raise ReproError(
            f"unknown request op {op!r} (expected one of "
            f"{', '.join(REQUEST_OPS)})")
    spec = _REQUEST_FIELDS[op]
    unknown = sorted(set(data) - set(spec) - {"op"})
    if unknown:
        raise ReproError(
            f"{op} request has unknown field(s): {', '.join(unknown)}")
    canonical = {"op": op}
    for name in sorted(spec):
        default, coerce = spec[name]
        if name in data:
            canonical[name] = coerce(op, name, data[name])
        elif default is _REQUIRED:
            raise ReproError(
                f"{op} request is missing required field {name!r}")
        else:
            canonical[name] = default
    return canonical


def parse_request(line) -> dict:
    """Decode one wire line into a canonical request."""
    if isinstance(line, (bytes, bytearray)):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ReproError(f"request is not valid UTF-8: {exc}")
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ReproError(f"request is not valid JSON: {exc}")
    if not isinstance(data, dict):
        raise ReproError(
            f"request must be a JSON object, got {type(data).__name__}")
    return canonical_request(data)


def request_digest(request: dict) -> str:
    """The canonical request's content digest (dedup/cache key)."""
    blob = json.dumps(request, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def build_config(request: dict, default_jobs=None):
    """The validated feedback-layer config for a study-family request.

    ``jobs`` defaults to the daemon's ``--jobs`` when the request leaves
    it null — a per-request override wins.  Validation is the same
    front-loaded pass :func:`repro.feedback.study.run_study` and friends
    run, so a bad engine name, duplicate seed or out-of-range level is
    reported before the request is ever dispatched.
    """
    from repro.feedback.study import (ExplorationStudyConfig,
                                      FrontierStudyConfig, StudyConfig,
                                      validate_exploration_config,
                                      validate_frontier_config,
                                      validate_study_config)
    op = request["op"]
    jobs = request.get("jobs")
    if jobs is None:
        jobs = default_jobs
    benchmarks = (tuple(request["benchmarks"])
                  if request.get("benchmarks") else None)
    seeds = tuple(request["seeds"]) if request.get("seeds") else None
    if op == "study":
        config = StudyConfig(
            benchmarks=benchmarks, levels=tuple(request["levels"]),
            lengths=tuple(request["lengths"]), seed=request["seed"],
            seeds=seeds, unroll_factor=request["unroll_factor"],
            verify=request["verify"], engine=request["engine"],
            jobs=jobs)
        validate_study_config(config)
    elif op == "explore-study":
        config = ExplorationStudyConfig(
            benchmarks=benchmarks, budgets=tuple(request["budgets"]),
            level=request["level"], lengths=tuple(request["lengths"]),
            seed=request["seed"], seeds=seeds,
            unroll_factor=request["unroll_factor"],
            max_candidates=request["max_candidates"],
            measure_top=request["measure_top"],
            engine=request["engine"], jobs=jobs)
        validate_exploration_config(config)
    elif op == "frontier":
        config = FrontierStudyConfig(
            benchmarks=benchmarks, level=request["level"],
            lengths=tuple(request["lengths"]), seed=request["seed"],
            seeds=seeds, unroll_factor=request["unroll_factor"],
            max_candidates=request["max_candidates"],
            measure_top=request["measure_top"],
            max_budget=request["max_budget"],
            engine=request["engine"], jobs=jobs)
        validate_frontier_config(config)
    else:
        raise ReproError(f"{op} requests do not build a study config")
    return config


def validate_simple_request(request: dict) -> None:
    """Front-load validation of an ``analyze``/``explore`` request."""
    from repro.opt.pipeline import OptLevel
    from repro.sim.machine import ensure_engine
    op = request["op"]
    ensure_engine(request["engine"])
    try:
        OptLevel(request["level"])
    except ValueError:
        raise ReproError(
            f"{op} request field 'level' is {request['level']!r}: not "
            f"an optimization level (expected 0, 1 or 2)")
    for length in request["lengths"]:
        if length < 2:
            raise ReproError(
                f"{op} request field 'lengths' contains {length}: "
                f"chains have at least two operations")
    if op == "explore" and request["budget"] <= 0:
        raise ReproError(
            f"explore request field 'budget' is {request['budget']}: "
            f"area budgets must be positive")
    if op == "analyze" and not request["source"].strip():
        raise ReproError("analyze request field 'source' is empty")


# -- response payloads -------------------------------------------------------------
#
# One builder per op, shared with the CLI's --json exports: the served
# "result" object and the file `python -m repro ... --json` writes are
# the same document.


def study_payload(study) -> dict:
    """``study`` response payload (= ``repro study --json``)."""
    from repro.feedback.results import study_summary
    return study_summary(study)


def exploration_payload(study) -> dict:
    """``explore-study`` payload (= ``repro explore-study --json``)."""
    config = study.config
    return {
        "config": {
            "budgets": list(config.budgets), "level": config.level,
            "seed": config.seed,
            "seeds": list(config.seeds) if config.seeds else None,
            "engine": config.engine},
        "cells": study.summary_rows(),
    }


def frontier_payload(study) -> dict:
    """``frontier`` payload (= ``repro explore-study --frontier
    --json``)."""
    config = study.config
    suite = [{
        "chain": chain.label,
        "frontier_count": chain.frontier_count,
        "benchmarks": list(chain.benchmarks),
        "combined_frequency": chain.combined_frequency,
        "reason": chain.reason(len(study.benchmarks)),
    } for chain in study.suite_chains()]
    return {
        "config": {
            "level": config.level, "seed": config.seed,
            "seeds": list(config.seeds) if config.seeds else None,
            "max_budget": config.max_budget,
            "engine": config.engine},
        "frontiers": {
            name: {"breakpoints": bench.breakpoints()}
            for name, bench in study.benchmarks.items()},
        "cells": study.summary_rows(),
        "suite_chains": suite,
    }


def explore_payload(result) -> dict:
    """``explore`` payload: candidates, measured points, the winner."""
    def point(p) -> dict:
        return {
            "chains": p.labels(), "speedup": p.speedup, "area": p.area,
            "base_cycles": p.evaluation.base_cycles,
            "chained_cycles": p.evaluation.chained_cycles,
        }
    best = result.best
    return {
        "candidates": [{
            "label": cand.label, "frequency": cand.frequency,
            "area": cand.area, "cycles_saved": cand.cycles_saved,
        } for cand in result.candidates],
        "measured": [point(p) for p in result.measured],
        "best": point(best) if best is not None else None,
    }


def analyze_payload(request: dict, result, detection, report) -> dict:
    """``analyze`` payload: cycles, detected sequences, coverage."""
    from repro.chaining.sequence import sequence_label
    return {
        "name": request["name"],
        "level": request["level"],
        "cycles": result.cycles,
        "total_ops": detection.total_ops,
        "sequences": {
            str(length): [[sequence_label(name), freq]
                          for name, freq in detection.top(length,
                                                          limit=8)]
            for length in request["lengths"]},
        "coverage": {
            "threshold": request["threshold"],
            "total": report.coverage,
            "chained_instructions": report.sequence_count,
            "steps": [[step.label, step.contribution]
                      for step in report.steps]},
    }
