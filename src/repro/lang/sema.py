"""Semantic analysis: name resolution and type checking.

``analyze`` walks the AST, builds the :class:`~repro.lang.symbols.SymbolTable`
and annotates every expression node with its type (``node.ty``).  It enforces
the mini-C rules:

* every name is declared before use; no shadowing of functions by variables;
* array accesses use exactly the declared rank, with integer indices;
* ``%``, shifts, bitwise and logical operators take integers;
* arrays are passed whole only as call arguments (no array assignment);
* ``break``/``continue`` appear inside loops;
* array initializers appear on global declarations only.

The annotated AST plus symbol table is the contract consumed by the lowering
stage.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.errors import SemanticError
from repro.lang import ast_nodes as ast
from repro.lang.symbols import (INTRINSICS, FuncSymbol, Scope, SymbolTable,
                                VarSymbol)
from repro.lang.types import (FLOAT, INT, VOID, ArrayType, Type, is_scalar,
                              unify_arith)

_INT_ONLY_BINOPS = {"%", "<<", ">>", "&", "|", "^"}
_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}
_LOGICAL = {"&&", "||"}


def _scalar_type(name: str) -> Type:
    return {"int": INT, "float": FLOAT, "void": VOID}[name]


class _Analyzer:
    def __init__(self):
        self.table = SymbolTable()
        self.current_fn: Optional[FuncSymbol] = None
        self.loop_depth = 0

    # -- declarations -----------------------------------------------------------

    def declare_var(self, decl: ast.Decl, scope: Scope,
                    is_global: bool) -> VarSymbol:
        base = _scalar_type(decl.base_type)
        ty: Union[Type, ArrayType]
        if decl.dims:
            ty = ArrayType(base, decl.dims)
        else:
            ty = base
        if decl.init is not None:
            self._check_initializer(decl, ty, is_global)
        return scope.declare(VarSymbol(decl.name, ty, is_global, decl.loc))

    def _check_initializer(self, decl: ast.Decl, ty, is_global: bool) -> None:
        if isinstance(decl.init, list):
            if not isinstance(ty, ArrayType):
                raise SemanticError(
                    f"brace initializer on scalar {decl.name!r}", decl.loc)
            if not is_global:
                raise SemanticError(
                    "array initializers are only supported on globals",
                    decl.loc)
            if ty.total_size is not None and len(decl.init) > ty.total_size:
                raise SemanticError(
                    f"too many initializer values for {decl.name!r}",
                    decl.loc)
            for item in decl.init:
                item_ty = self.expr(item, Scope())  # literals only
                if not is_scalar(item_ty):
                    raise SemanticError("array initializer values must be "
                                        "numeric literals", item.loc)
        else:
            if isinstance(ty, ArrayType):
                raise SemanticError(
                    f"array {decl.name!r} needs a brace initializer",
                    decl.loc)
            init_ty = self.expr(decl.init,
                                Scope() if is_global else self._scope)
            if not is_scalar(init_ty):
                raise SemanticError("initializer must be numeric",
                                    decl.init.loc)

    # -- program ----------------------------------------------------------------

    def program(self, prog: ast.Program) -> SymbolTable:
        self._scope = self.table.globals
        for decl in prog.globals:
            self.declare_var(decl, self.table.globals, is_global=True)
        # Two passes over functions so forward calls type-check.
        for fn in prog.functions:
            params: List[Union[Type, ArrayType]] = []
            for p in fn.params:
                base = _scalar_type(p.base_type)
                params.append(ArrayType(base, p.dims) if p.dims else base)
            self.table.declare_function(
                FuncSymbol(fn.name, _scalar_type(fn.return_type), params,
                           fn.loc))
        for fn in prog.functions:
            self.function(fn)
        if "main" not in self.table.functions:
            raise SemanticError("program has no main function", prog.loc)
        main = self.table.functions["main"]
        if main.param_types:
            raise SemanticError("main must take no parameters", main.loc)
        return self.table

    def function(self, fn: ast.FuncDef) -> None:
        self.current_fn = self.table.functions[fn.name]
        scope = Scope(self.table.globals)
        for p, ty in zip(fn.params, self.current_fn.param_types):
            scope.declare(VarSymbol(p.name, ty, is_global=False, loc=p.loc))
        self.block(fn.body, scope)
        self.current_fn = None

    # -- statements ------------------------------------------------------------

    def block(self, block: ast.Block, parent: Scope) -> None:
        scope = Scope(parent)
        saved = self._scope
        self._scope = scope
        for item in block.items:
            if isinstance(item, ast.Decl):
                self.declare_var(item, scope, is_global=False)
            else:
                self.statement(item, scope)
        self._scope = saved

    def statement(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.Block):
            self.block(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self.expr(stmt.expr, scope)
        elif isinstance(stmt, ast.Assign):
            self.assign(stmt, scope)
        elif isinstance(stmt, ast.If):
            self._check_condition(stmt.cond, scope)
            self.statement(stmt.then, scope)
            if stmt.other is not None:
                self.statement(stmt.other, scope)
        elif isinstance(stmt, ast.While):
            self._check_condition(stmt.cond, scope)
            self.loop_depth += 1
            self.statement(stmt.body, scope)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if stmt.init is not None:
                self.statement(stmt.init, inner)
            if stmt.cond is not None:
                self._check_condition(stmt.cond, inner)
            if stmt.step is not None:
                self.statement(stmt.step, inner)
            self.loop_depth += 1
            self.statement(stmt.body, inner)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt, scope)
        elif isinstance(stmt, ast.Break):
            if self.loop_depth == 0:
                raise SemanticError("break outside a loop", stmt.loc)
        elif isinstance(stmt, ast.Continue):
            if self.loop_depth == 0:
                raise SemanticError("continue outside a loop", stmt.loc)
        else:  # pragma: no cover - parser produces no other nodes
            raise SemanticError(f"unsupported statement {type(stmt).__name__}",
                                stmt.loc)

    def assign(self, stmt: ast.Assign, scope: Scope) -> None:
        target_ty = self.expr(stmt.target, scope)
        if not is_scalar(target_ty):
            raise SemanticError("cannot assign to an array as a whole",
                                stmt.loc)
        value_ty = self.expr(stmt.value, scope)
        if not is_scalar(value_ty):
            raise SemanticError("assigned value must be numeric",
                                stmt.value.loc)
        if stmt.op != "=":
            base_op = stmt.op[:-1]
            if base_op in _INT_ONLY_BINOPS and (target_ty.is_float
                                                or value_ty.is_float):
                raise SemanticError(
                    f"operator {base_op!r} requires integer operands",
                    stmt.loc)

    def _check_condition(self, cond: ast.Expr, scope: Scope) -> None:
        ty = self.expr(cond, scope)
        if not is_scalar(ty):
            raise SemanticError("condition must be numeric", cond.loc)

    def _check_return(self, stmt: ast.Return, scope: Scope) -> None:
        expected = self.current_fn.return_type
        if stmt.value is None:
            if expected is not VOID:
                raise SemanticError(
                    f"{self.current_fn.name} must return a value", stmt.loc)
            return
        if expected is VOID:
            raise SemanticError(
                f"{self.current_fn.name} returns void", stmt.loc)
        ty = self.expr(stmt.value, scope)
        if not is_scalar(ty):
            raise SemanticError("return value must be numeric",
                                stmt.value.loc)

    # -- expressions -----------------------------------------------------------

    def expr(self, node: ast.Expr, scope: Scope):
        ty = self._expr(node, scope)
        node.ty = ty
        return ty

    def _expr(self, node: ast.Expr, scope: Scope):
        if isinstance(node, ast.IntLit):
            return INT
        if isinstance(node, ast.FloatLit):
            return FLOAT
        if isinstance(node, ast.Name):
            sym = scope.lookup(node.ident)
            if sym is None:
                raise SemanticError(f"undeclared variable {node.ident!r}",
                                    node.loc)
            return sym.ty
        if isinstance(node, ast.Index):
            return self._index(node, scope)
        if isinstance(node, ast.BinOp):
            return self._binop(node, scope)
        if isinstance(node, ast.UnOp):
            return self._unop(node, scope)
        if isinstance(node, ast.Cast):
            operand_ty = self.expr(node.operand, scope)
            if not is_scalar(operand_ty):
                raise SemanticError("cast operand must be numeric", node.loc)
            return _scalar_type(node.target)
        if isinstance(node, ast.Call):
            return self._call(node, scope)
        if isinstance(node, ast.Cond):
            self._check_condition(node.cond, scope)
            then_ty = self.expr(node.then, scope)
            other_ty = self.expr(node.other, scope)
            if not (is_scalar(then_ty) and is_scalar(other_ty)):
                raise SemanticError("ternary arms must be numeric", node.loc)
            return unify_arith(then_ty, other_ty)
        raise SemanticError(f"unsupported expression {type(node).__name__}",
                            node.loc)  # pragma: no cover

    def _index(self, node: ast.Index, scope: Scope):
        sym = scope.lookup(node.base.ident)
        if sym is None:
            raise SemanticError(f"undeclared array {node.base.ident!r}",
                                node.base.loc)
        if not sym.is_array:
            raise SemanticError(f"{node.base.ident!r} is not an array",
                                node.base.loc)
        node.base.ty = sym.ty
        if len(node.indices) != sym.ty.rank:
            raise SemanticError(
                f"array {node.base.ident!r} has rank {sym.ty.rank}, "
                f"indexed with {len(node.indices)} subscripts", node.loc)
        for idx in node.indices:
            idx_ty = self.expr(idx, scope)
            if idx_ty is not INT:
                raise SemanticError("array indices must be integers",
                                    idx.loc)
        return sym.ty.element

    def _binop(self, node: ast.BinOp, scope: Scope):
        lhs = self.expr(node.lhs, scope)
        rhs = self.expr(node.rhs, scope)
        if not (is_scalar(lhs) and is_scalar(rhs)):
            raise SemanticError(f"operator {node.op!r} needs numeric "
                                "operands", node.loc)
        if node.op in _LOGICAL:
            return INT
        if node.op in _COMPARISONS:
            return INT
        if node.op in _INT_ONLY_BINOPS:
            if lhs.is_float or rhs.is_float:
                raise SemanticError(
                    f"operator {node.op!r} requires integer operands",
                    node.loc)
            return INT
        return unify_arith(lhs, rhs)

    def _unop(self, node: ast.UnOp, scope: Scope):
        ty = self.expr(node.operand, scope)
        if not is_scalar(ty):
            raise SemanticError(f"operator {node.op!r} needs a numeric "
                                "operand", node.loc)
        if node.op == "!":
            return INT
        if node.op == "~":
            if ty.is_float:
                raise SemanticError("operator '~' requires an integer",
                                    node.loc)
            return INT
        return ty  # unary minus keeps the operand type

    def _call(self, node: ast.Call, scope: Scope):
        if node.callee in INTRINSICS:
            param_types, ret = INTRINSICS[node.callee]
            if len(node.args) != len(param_types):
                raise SemanticError(
                    f"intrinsic {node.callee!r} takes {len(param_types)} "
                    f"argument(s)", node.loc)
            for arg in node.args:
                arg_ty = self.expr(arg, scope)
                if not is_scalar(arg_ty):
                    raise SemanticError("intrinsic arguments must be "
                                        "numeric", arg.loc)
            return ret
        sym = self.table.lookup_function(node.callee)
        if sym is None:
            raise SemanticError(f"call to undeclared function "
                                f"{node.callee!r}", node.loc)
        if len(node.args) != len(sym.param_types):
            raise SemanticError(
                f"{node.callee!r} takes {len(sym.param_types)} argument(s), "
                f"got {len(node.args)}", node.loc)
        for arg, want in zip(node.args, sym.param_types):
            got = self.expr(arg, scope)
            if isinstance(want, ArrayType):
                if not isinstance(got, ArrayType):
                    raise SemanticError("expected an array argument",
                                        arg.loc)
                if got.element != want.element or got.rank != want.rank:
                    raise SemanticError("array argument type mismatch",
                                        arg.loc)
                fixed = [w for w in want.dims if w is not None]
                got_fixed = [g for g, w in zip(got.dims, want.dims)
                             if w is not None]
                if fixed != got_fixed:
                    raise SemanticError("array argument extent mismatch",
                                        arg.loc)
            else:
                if not is_scalar(got):
                    raise SemanticError("expected a scalar argument",
                                        arg.loc)
        return sym.return_type


def analyze(program: ast.Program) -> SymbolTable:
    """Type-check *program* and return its symbol table.

    Expression nodes are annotated in place with ``node.ty``.
    """
    return _Analyzer().program(program)
