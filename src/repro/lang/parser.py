"""Recursive-descent parser for mini-C.

Expression parsing uses precedence climbing with the standard C precedence
table.  The parser is deliberately strict: anything outside the supported
subset is a :class:`~repro.errors.ParseError` with a source location, which
keeps benchmark authoring honest.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind

# Binary operator precedence, high binds tighter.  (Assignment and comma are
# handled structurally, not as expression operators.)
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>=")

_TYPE_NAMES = ("int", "float", "void")


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ---------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        i = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[i]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def expect_punct(self, text: str) -> Token:
        tok = self.peek()
        if not tok.is_punct(text):
            raise ParseError(f"expected {text!r}, found {tok}", tok.loc)
        return self.advance()

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {tok}", tok.loc)
        return self.advance()

    def accept_punct(self, text: str) -> Optional[Token]:
        if self.peek().is_punct(text):
            return self.advance()
        return None

    def at_type(self, offset: int = 0) -> bool:
        tok = self.peek(offset)
        return tok.kind is TokenKind.KEYWORD and tok.text in _TYPE_NAMES

    # -- top level ----------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        first_loc = self.peek().loc
        program = ast.Program(loc=first_loc)
        while self.peek().kind is not TokenKind.EOF:
            if not self.at_type():
                raise ParseError(
                    f"expected a declaration, found {self.peek()}",
                    self.peek().loc)
            # Distinguish function definitions from variable declarations by
            # looking past "type ident" for "(".
            if (self.peek(1).kind is TokenKind.IDENT
                    and self.peek(2).is_punct("(")):
                program.functions.append(self.parse_function())
            else:
                program.globals.extend(self.parse_decl_list())
        return program

    def parse_function(self) -> ast.FuncDef:
        type_tok = self.advance()
        name_tok = self.expect_ident()
        self.expect_punct("(")
        params: List[ast.Param] = []
        if not self.peek().is_punct(")"):
            params.append(self.parse_param())
            while self.accept_punct(","):
                params.append(self.parse_param())
        self.expect_punct(")")
        body = self.parse_block()
        return ast.FuncDef(loc=type_tok.loc, name=name_tok.text,
                           return_type=type_tok.text, params=params,
                           body=body)

    def parse_param(self) -> ast.Param:
        if not self.at_type() or self.peek().text == "void":
            raise ParseError(f"expected parameter type, found {self.peek()}",
                             self.peek().loc)
        type_tok = self.advance()
        name_tok = self.expect_ident()
        dims: List[Optional[int]] = []
        while self.accept_punct("["):
            if self.peek().is_punct("]"):
                dims.append(None)
            else:
                dims.append(self._parse_extent())
            self.expect_punct("]")
        if len(dims) > 2:
            raise ParseError("arrays have at most two dimensions",
                             name_tok.loc)
        return ast.Param(loc=type_tok.loc, name=name_tok.text,
                         base_type=type_tok.text, dims=tuple(dims))

    def _parse_extent(self) -> int:
        tok = self.peek()
        if tok.kind is not TokenKind.INT:
            raise ParseError("array extent must be an integer literal",
                             tok.loc)
        self.advance()
        value = int(tok.text)
        if value <= 0:
            raise ParseError("array extent must be positive", tok.loc)
        return value

    def parse_decl_list(self) -> List[ast.Decl]:
        """Parse ``type declarator (, declarator)* ;``."""
        type_tok = self.advance()
        if type_tok.text == "void":
            raise ParseError("variables cannot have void type", type_tok.loc)
        decls = [self.parse_declarator(type_tok.text)]
        while self.accept_punct(","):
            decls.append(self.parse_declarator(type_tok.text))
        self.expect_punct(";")
        return decls

    def parse_declarator(self, base_type: str) -> ast.Decl:
        name_tok = self.expect_ident()
        dims: List[int] = []
        while self.accept_punct("["):
            dims.append(self._parse_extent())
            self.expect_punct("]")
        if len(dims) > 2:
            raise ParseError("arrays have at most two dimensions",
                             name_tok.loc)
        init = None
        if self.accept_punct("="):
            if self.peek().is_punct("{"):
                init = self.parse_brace_initializer()
            else:
                init = self.parse_expr()
        return ast.Decl(loc=name_tok.loc, name=name_tok.text,
                        base_type=base_type, dims=tuple(dims), init=init)

    def parse_brace_initializer(self) -> List[ast.Expr]:
        self.expect_punct("{")
        items = [self.parse_expr()]
        while self.accept_punct(","):
            if self.peek().is_punct("}"):
                break  # trailing comma
            items.append(self.parse_expr())
        self.expect_punct("}")
        return items

    # -- statements ------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        open_tok = self.expect_punct("{")
        items: List = []
        while not self.peek().is_punct("}"):
            if self.peek().kind is TokenKind.EOF:
                raise ParseError("unterminated block", open_tok.loc)
            if self.at_type():
                items.extend(self.parse_decl_list())
            else:
                items.append(self.parse_statement())
        self.expect_punct("}")
        return ast.Block(loc=open_tok.loc, items=items)

    def parse_statement(self) -> ast.Stmt:
        tok = self.peek()
        if tok.is_punct("{"):
            return self.parse_block()
        if tok.is_keyword("if"):
            return self.parse_if()
        if tok.is_keyword("while"):
            return self.parse_while()
        if tok.is_keyword("for"):
            return self.parse_for()
        if tok.is_keyword("return"):
            self.advance()
            value = None
            if not self.peek().is_punct(";"):
                value = self.parse_expr()
            self.expect_punct(";")
            return ast.Return(loc=tok.loc, value=value)
        if tok.is_keyword("break"):
            self.advance()
            self.expect_punct(";")
            return ast.Break(loc=tok.loc)
        if tok.is_keyword("continue"):
            self.advance()
            self.expect_punct(";")
            return ast.Continue(loc=tok.loc)
        if tok.is_punct(";"):
            self.advance()
            return ast.Block(loc=tok.loc, items=[])
        stmt = self.parse_simple_statement()
        self.expect_punct(";")
        return stmt

    def parse_simple_statement(self) -> ast.Stmt:
        """An assignment, increment/decrement, or bare expression."""
        loc = self.peek().loc
        expr = self.parse_expr()
        tok = self.peek()
        if tok.kind is TokenKind.PUNCT and tok.text in _ASSIGN_OPS:
            self._require_lvalue(expr)
            self.advance()
            value = self.parse_expr()
            return ast.Assign(loc=loc, target=expr, op=tok.text, value=value)
        if tok.is_punct("++") or tok.is_punct("--"):
            self._require_lvalue(expr)
            self.advance()
            one = ast.IntLit(loc=tok.loc, value=1)
            op = "+=" if tok.text == "++" else "-="
            return ast.Assign(loc=loc, target=expr, op=op, value=one)
        return ast.ExprStmt(loc=loc, expr=expr)

    @staticmethod
    def _require_lvalue(expr: ast.Expr) -> None:
        if not isinstance(expr, (ast.Name, ast.Index)):
            raise ParseError("assignment target must be a variable or "
                             "array element", expr.loc)

    def parse_if(self) -> ast.If:
        tok = self.advance()
        self.expect_punct("(")
        cond = self.parse_expr()
        self.expect_punct(")")
        then = self.parse_statement()
        other = None
        if self.peek().is_keyword("else"):
            self.advance()
            other = self.parse_statement()
        return ast.If(loc=tok.loc, cond=cond, then=then, other=other)

    def parse_while(self) -> ast.While:
        tok = self.advance()
        self.expect_punct("(")
        cond = self.parse_expr()
        self.expect_punct(")")
        body = self.parse_statement()
        return ast.While(loc=tok.loc, cond=cond, body=body)

    def parse_for(self) -> ast.For:
        tok = self.advance()
        self.expect_punct("(")
        init = None
        if not self.peek().is_punct(";"):
            init = self.parse_simple_statement()
        self.expect_punct(";")
        cond = None
        if not self.peek().is_punct(";"):
            cond = self.parse_expr()
        self.expect_punct(";")
        step = None
        if not self.peek().is_punct(")"):
            step = self.parse_simple_statement()
        self.expect_punct(")")
        body = self.parse_statement()
        return ast.For(loc=tok.loc, init=init, cond=cond, step=step,
                       body=body)

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(1)
        if self.accept_punct("?"):
            then = self.parse_expr()
            self.expect_punct(":")
            other = self.parse_ternary()
            return ast.Cond(loc=cond.loc, cond=cond, then=then, other=other)
        return cond

    def parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self.parse_unary()
        while True:
            tok = self.peek()
            prec = _PRECEDENCE.get(tok.text) if tok.kind is TokenKind.PUNCT \
                else None
            if prec is None or prec < min_prec:
                return lhs
            self.advance()
            rhs = self.parse_binary(prec + 1)
            lhs = ast.BinOp(loc=tok.loc, op=tok.text, lhs=lhs, rhs=rhs)

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind is TokenKind.PUNCT and tok.text in ("-", "!", "~", "+"):
            self.advance()
            operand = self.parse_unary()
            if tok.text == "+":
                return operand
            return ast.UnOp(loc=tok.loc, op=tok.text, operand=operand)
        # Cast: "(" type ")" unary
        if (tok.is_punct("(") and self.peek(1).kind is TokenKind.KEYWORD
                and self.peek(1).text in ("int", "float")
                and self.peek(2).is_punct(")")):
            self.advance()
            type_tok = self.advance()
            self.advance()
            operand = self.parse_unary()
            return ast.Cast(loc=tok.loc, target=type_tok.text,
                            operand=operand)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.peek().is_punct("["):
                if not isinstance(expr, ast.Name):
                    raise ParseError("only named arrays can be indexed",
                                     self.peek().loc)
                indices: List[ast.Expr] = []
                while self.accept_punct("["):
                    indices.append(self.parse_expr())
                    self.expect_punct("]")
                if len(indices) > 2:
                    raise ParseError("arrays have at most two dimensions",
                                     expr.loc)
                expr = ast.Index(loc=expr.loc, base=expr, indices=indices)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind is TokenKind.INT:
            self.advance()
            return ast.IntLit(loc=tok.loc, value=int(tok.text))
        if tok.kind is TokenKind.FLOAT:
            self.advance()
            return ast.FloatLit(loc=tok.loc, value=float(tok.text))
        if tok.kind is TokenKind.IDENT:
            self.advance()
            if self.peek().is_punct("("):
                self.advance()
                args: List[ast.Expr] = []
                if not self.peek().is_punct(")"):
                    args.append(self.parse_expr())
                    while self.accept_punct(","):
                        args.append(self.parse_expr())
                self.expect_punct(")")
                return ast.Call(loc=tok.loc, callee=tok.text, args=args)
            return ast.Name(loc=tok.loc, ident=tok.text)
        if tok.is_punct("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        raise ParseError(f"expected an expression, found {tok}", tok.loc)


def parse(source: str, filename: str = "<source>") -> ast.Program:
    """Parse mini-C *source* into a :class:`~repro.lang.ast_nodes.Program`."""
    return _Parser(tokenize(source, filename)).parse_program()
