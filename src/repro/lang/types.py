"""The mini-C type system: ``int``, ``float``, ``void`` and array types.

Arrays are fixed-size, one- or two-dimensional, of scalar element type.
The usual C arithmetic conversion applies: mixing ``int`` and ``float`` in a
binary operation promotes to ``float``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class Type:
    """A scalar or void type."""

    name: str  # "int" | "float" | "void"

    def __str__(self) -> str:
        return self.name

    @property
    def is_float(self) -> bool:
        return self.name == "float"

    @property
    def is_numeric(self) -> bool:
        return self.name in ("int", "float")


INT = Type("int")
FLOAT = Type("float")
VOID = Type("void")


@dataclass(frozen=True)
class ArrayType:
    """A fixed-size array of a scalar element type.

    ``dims`` holds one or two extents.  An extent of ``None`` is allowed only
    for the first dimension of an array *parameter* (C's ``float x[]``),
    whose size comes from the argument bound at the call.
    """

    element: Type
    dims: Tuple[Optional[int], ...]

    def __str__(self) -> str:
        suffix = "".join(f"[{d if d is not None else ''}]" for d in self.dims)
        return f"{self.element}{suffix}"

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def total_size(self) -> Optional[int]:
        total = 1
        for d in self.dims:
            if d is None:
                return None
            total *= d
        return total

    @property
    def is_float(self) -> bool:
        return self.element.is_float


def unify_arith(a: Type, b: Type) -> Type:
    """C arithmetic conversion for a binary operator."""
    if a.is_float or b.is_float:
        return FLOAT
    return INT


def is_scalar(ty) -> bool:
    return isinstance(ty, Type) and ty.is_numeric
