"""Token definitions for the mini-C lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SourceLocation


class TokenKind(enum.Enum):
    IDENT = "identifier"
    INT = "int literal"
    FLOAT = "float literal"
    KEYWORD = "keyword"
    PUNCT = "punctuator"
    EOF = "end of input"


KEYWORDS = frozenset({
    "int", "float", "void", "if", "else", "while", "for", "return",
    "break", "continue",
})

# Multi-character punctuators must be listed longest-first so the lexer
# prefers '<<=' over '<<' over '<'.
PUNCTUATORS = (
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ",", ";", "?", ":",
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    loc: SourceLocation

    def __str__(self) -> str:
        if self.kind is TokenKind.EOF:
            return "<eof>"
        return self.text

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text
