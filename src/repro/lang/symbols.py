"""Symbol tables for semantic analysis."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.errors import SemanticError, SourceLocation
from repro.lang.types import FLOAT, INT, VOID, ArrayType, Type

# Math intrinsics available to benchmark programs.  They lower to opaque
# INTRIN instructions executed natively by the simulator; they never take
# part in chainable sequences (matching the paper, whose sequence vocabulary
# contains no transcendental units).
INTRINSICS: Dict[str, tuple] = {
    "sin": ((FLOAT,), FLOAT),
    "cos": ((FLOAT,), FLOAT),
    "sqrt": ((FLOAT,), FLOAT),
    "fabs": ((FLOAT,), FLOAT),
    "exp": ((FLOAT,), FLOAT),
    "log": ((FLOAT,), FLOAT),
    "atan2": ((FLOAT, FLOAT), FLOAT),
    "pow": ((FLOAT, FLOAT), FLOAT),
    "abs": ((INT,), INT),
}


@dataclass
class VarSymbol:
    """A declared scalar or array variable."""

    name: str
    ty: Union[Type, ArrayType]
    is_global: bool
    loc: Optional[SourceLocation] = None

    @property
    def is_array(self) -> bool:
        return isinstance(self.ty, ArrayType)


@dataclass
class FuncSymbol:
    """A user-defined function signature."""

    name: str
    return_type: Type
    param_types: List[Union[Type, ArrayType]]
    loc: Optional[SourceLocation] = None


class Scope:
    """One lexical scope; lookups chain to the parent."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self._vars: Dict[str, VarSymbol] = {}

    def declare(self, sym: VarSymbol) -> VarSymbol:
        if sym.name in self._vars:
            raise SemanticError(f"redeclaration of {sym.name!r}", sym.loc)
        self._vars[sym.name] = sym
        return sym

    def lookup(self, name: str) -> Optional[VarSymbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope._vars:
                return scope._vars[name]
            scope = scope.parent
        return None


class SymbolTable:
    """Program-wide symbols: functions plus a global variable scope."""

    def __init__(self):
        self.globals = Scope()
        self.functions: Dict[str, FuncSymbol] = {}

    def declare_function(self, sym: FuncSymbol) -> FuncSymbol:
        if sym.name in self.functions or sym.name in INTRINSICS:
            raise SemanticError(f"redefinition of function {sym.name!r}",
                                sym.loc)
        self.functions[sym.name] = sym
        return sym

    def lookup_function(self, name: str) -> Optional[FuncSymbol]:
        return self.functions.get(name)
