"""Abstract syntax tree of mini-C.

Every expression node gains a ``ty`` attribute during semantic analysis
(:mod:`repro.lang.sema`); the lowering stage relies on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.errors import SourceLocation


@dataclass
class Node:
    loc: SourceLocation


# ---------------------------------------------------------------- expressions


@dataclass
class Expr(Node):
    """Base class; ``ty`` is filled in by semantic analysis."""

    def __post_init__(self):
        self.ty = None


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class Name(Expr):
    ident: str


@dataclass
class Index(Expr):
    """``base[i]`` or ``base[i][j]`` — base is always a Name after parsing."""

    base: Name
    indices: List[Expr]


@dataclass
class BinOp(Expr):
    op: str  # "+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^",
             # "==", "!=", "<", "<=", ">", ">=", "&&", "||"
    lhs: Expr
    rhs: Expr


@dataclass
class UnOp(Expr):
    op: str  # "-", "!", "~", "+"
    operand: Expr


@dataclass
class Cast(Expr):
    target: str  # "int" | "float"
    operand: Expr


@dataclass
class Call(Expr):
    callee: str
    args: List[Expr]


@dataclass
class Cond(Expr):
    """Ternary ``c ? a : b``."""

    cond: Expr
    then: Expr
    other: Expr


# ---------------------------------------------------------------- statements


@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Assign(Stmt):
    """``target op= value``; ``op`` is ``"="`` or a compound like ``"+="``.

    ``target`` is a :class:`Name` or :class:`Index` lvalue.
    """

    target: Expr
    op: str
    value: Expr


@dataclass
class Block(Stmt):
    items: List[Union["Decl", Stmt]]


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    other: Optional[Stmt]


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class For(Stmt):
    init: Optional[Stmt]   # Assign or ExprStmt
    cond: Optional[Expr]
    step: Optional[Stmt]   # Assign or ExprStmt
    body: Stmt


@dataclass
class Return(Stmt):
    value: Optional[Expr]


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# -------------------------------------------------------------- declarations


@dataclass
class Decl(Node):
    """One declarator of a scalar or array variable."""

    name: str
    base_type: str                      # "int" | "float"
    dims: Tuple[Optional[int], ...]     # () for scalars
    init: Optional[Union[Expr, List[Expr]]]  # list = brace initializer


@dataclass
class Param(Node):
    name: str
    base_type: str
    dims: Tuple[Optional[int], ...]


@dataclass
class FuncDef(Node):
    name: str
    return_type: str  # "int" | "float" | "void"
    params: List[Param]
    body: Block


@dataclass
class Program(Node):
    """A whole translation unit."""

    globals: List[Decl] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)
