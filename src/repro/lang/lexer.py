"""Hand-written lexer for mini-C.

Supports ``//`` line comments and ``/* */`` block comments, decimal integer
literals, and float literals in the usual C forms (``1.0``, ``.5``, ``1e-3``,
``3.f`` minus the suffix — suffixes are not supported).
"""

from __future__ import annotations

from typing import List

from repro.errors import LexerError, SourceLocation
from repro.lang.tokens import KEYWORDS, PUNCTUATORS, Token, TokenKind


class _Cursor:
    def __init__(self, text: str, filename: str):
        self.text = text
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1

    def loc(self) -> SourceLocation:
        return SourceLocation(self.line, self.col, self.filename)

    def peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.text[i] if i < len(self.text) else ""

    def advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos >= len(self.text):
                return
            if self.text[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def startswith(self, s: str) -> bool:
        return self.text.startswith(s, self.pos)


def _skip_trivia(cur: _Cursor) -> None:
    while not cur.at_end():
        ch = cur.peek()
        if ch in " \t\r\n":
            cur.advance()
        elif cur.startswith("//"):
            while not cur.at_end() and cur.peek() != "\n":
                cur.advance()
        elif cur.startswith("/*"):
            start = cur.loc()
            cur.advance(2)
            while not cur.startswith("*/"):
                if cur.at_end():
                    raise LexerError("unterminated block comment", start)
                cur.advance()
            cur.advance(2)
        else:
            return


def _lex_number(cur: _Cursor) -> Token:
    loc = cur.loc()
    start = cur.pos
    saw_dot = False
    saw_exp = False
    while True:
        ch = cur.peek()
        if ch.isdigit():
            cur.advance()
        elif ch == "." and not saw_dot and not saw_exp:
            saw_dot = True
            cur.advance()
        elif ch in "eE" and not saw_exp and cur.pos > start:
            nxt = cur.peek(1)
            if nxt.isdigit() or (nxt in "+-" and cur.peek(2).isdigit()):
                saw_exp = True
                cur.advance()
                if cur.peek() in "+-":
                    cur.advance()
            else:
                break
        else:
            break
    text = cur.text[start:cur.pos]
    if saw_dot or saw_exp:
        return Token(TokenKind.FLOAT, text, loc)
    return Token(TokenKind.INT, text, loc)


def _lex_word(cur: _Cursor) -> Token:
    loc = cur.loc()
    start = cur.pos
    while cur.peek().isalnum() or cur.peek() == "_":
        cur.advance()
    text = cur.text[start:cur.pos]
    kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
    return Token(kind, text, loc)


def tokenize(source: str, filename: str = "<source>") -> List[Token]:
    """Tokenize *source*, returning a list ending with an EOF token."""
    cur = _Cursor(source, filename)
    tokens: List[Token] = []
    while True:
        _skip_trivia(cur)
        if cur.at_end():
            tokens.append(Token(TokenKind.EOF, "", cur.loc()))
            return tokens
        ch = cur.peek()
        if ch.isdigit() or (ch == "." and cur.peek(1).isdigit()):
            tokens.append(_lex_number(cur))
        elif ch.isalpha() or ch == "_":
            tokens.append(_lex_word(cur))
        else:
            loc = cur.loc()
            for punct in PUNCTUATORS:
                if cur.startswith(punct):
                    cur.advance(len(punct))
                    tokens.append(Token(TokenKind.PUNCT, punct, loc))
                    break
            else:
                raise LexerError(f"unexpected character {ch!r}", loc)
