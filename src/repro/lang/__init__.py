"""Mini-C front end.

This package stands in for the paper's "version of the Gnu C Compiler (gcc)
which was modified to generate a 3-address code" (Figure 2, step 1).  It
implements a C subset rich enough for the twelve DSP benchmarks of Table 1:
``int``/``float`` scalars, fixed-size 1-D/2-D arrays, functions with scalar
and array parameters, the full C expression grammar over those types, and
``if``/``while``/``for``/``break``/``continue``/``return`` control flow.

The public entry point is :func:`compile_source` in :mod:`repro.frontend`,
which chains the lexer, parser, semantic analyzer and lowering.
"""

from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.sema import analyze

__all__ = ["tokenize", "parse", "analyze"]
