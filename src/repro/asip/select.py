"""Chain-aware instruction selection.

Rewrites a *sequential* program graph (one operation per node — either the
level-0 graph or a re-sequentialized optimized schedule from
:mod:`repro.asip.resequence`), fusing runs of nodes that match a chained
instruction's pattern into a single :class:`FusedInstruction` node.

Matching rules:

* the node run is connected head-to-tail, interior nodes have exactly one
  predecessor (no path enters the middle of a chain) and one successor;
* no node in the run carries control (a branch issues on its own);
* each operation's destination feeds an operand of the next (the same
  data-flow condition the detector used);
* patterns are tried longest-first, greedily and non-overlapping.

A fused node still writes every intermediate destination register, so
downstream consumers of an intermediate value keep working — the hardware
analogue is that the chained datapath taps stay connected to the register
file write ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.asip.isa import ChainedInstruction, InstructionSet
from repro.cfg.graph import GraphModule, Node, ProgramGraph
from repro.errors import AsipError
from repro.ir.instr import Instruction
from repro.ir.ops import Op


class FusedInstruction(Instruction):
    """A chained instruction occurrence: its parts execute back-to-back
    within one issue, with operand forwarding between them."""

    __slots__ = ("parts", "chain")

    def __init__(self, chain: ChainedInstruction,
                 parts: Sequence[Instruction]):
        if len(parts) != chain.length:
            raise AsipError(
                f"{chain.name}: {len(parts)} parts for a "
                f"{chain.length}-operation chain")
        self.parts = list(parts)
        self.chain = chain
        super().__init__(Op.CHAIN)

    def uses(self):
        seen = {}
        for part in self.parts:
            for r in part.uses():
                seen.setdefault(r)
        return tuple(seen)

    def defs(self):
        seen = {}
        for part in self.parts:
            for r in part.defs():
                seen.setdefault(r)
        return tuple(seen)

    def clone(self, reg_map=None, label_map=None) -> "FusedInstruction":
        return FusedInstruction(
            self.chain,
            [p.clone(reg_map, label_map) for p in self.parts])

    def __str__(self) -> str:
        inner = "; ".join(str(p) for p in self.parts)
        return f"{self.chain.name} {{ {inner} }}"


@dataclass
class SelectionStats:
    """What one selection run fused."""

    # chain pattern -> number of static sites fused
    sites: Dict[Tuple[str, ...], int] = field(default_factory=dict)
    nodes_removed: int = 0

    @property
    def total_sites(self) -> int:
        return sum(self.sites.values())


def select_chains(module: GraphModule, isa: InstructionSet
                  ) -> SelectionStats:
    """Fuse every match of *isa*'s chains in every graph of *module*.

    Mutates *module* in place and returns :class:`SelectionStats`.
    """
    stats = SelectionStats()
    chains = sorted(isa.chains, key=lambda c: -c.length)
    for graph in module.graphs.values():
        _select_in_graph(graph, chains, stats)
    return stats


def _select_in_graph(graph: ProgramGraph,
                     chains: List[ChainedInstruction],
                     stats: SelectionStats) -> None:
    for nid in graph.rpo_order():
        if nid not in graph.nodes:
            continue  # consumed by an earlier fusion
        for chain in chains:
            run = _match_at(graph, nid, chain.pattern)
            if run is None:
                continue
            _fuse_run(graph, run, chain)
            key = tuple(chain.pattern)
            stats.sites[key] = stats.sites.get(key, 0) + 1
            stats.nodes_removed += len(run) - 1
            break  # node rewritten; move on


def _match_at(graph: ProgramGraph, start: int,
              pattern: Sequence[str]) -> Optional[List[int]]:
    """Try to match *pattern* on the node run starting at *start*."""
    run = [start]
    node = graph.nodes[start]
    if node.control is not None or len(node.ops) != 1:
        return None
    op = node.ops[0]
    if isinstance(op, FusedInstruction) or op.chain_class != pattern[0]:
        return None
    producer = op
    for want in pattern[1:]:
        if len(node.succs) != 1:
            return None
        nxt_id = node.succs[0]
        if nxt_id in run:
            return None  # would wrap around a cycle onto itself
        nxt = graph.nodes[nxt_id]
        if nxt.control is not None or len(nxt.ops) != 1:
            return None
        if len(nxt.preds) != 1:
            return None  # something jumps into the middle of the chain
        consumer = nxt.ops[0]
        if isinstance(consumer, FusedInstruction) \
                or consumer.chain_class != want:
            return None
        if producer.dest is None or producer.dest not in consumer.uses():
            return None
        run.append(nxt_id)
        node = nxt
        producer = consumer
    return run


def _fuse_run(graph: ProgramGraph, run: List[int],
              chain: ChainedInstruction) -> None:
    head = graph.nodes[run[0]]
    tail = graph.nodes[run[-1]]
    parts = [graph.nodes[nid].ops[0] for nid in run]
    fused = FusedInstruction(chain, parts)
    head.ops = [fused]
    tail_succs = list(tail.succs)
    # Unlink the interior of the run and reconnect head -> tail successors.
    for prev, cur in zip(run, run[1:]):
        graph.remove_edge(prev, cur)
    for nid in run[1:]:
        node = graph.nodes[nid]
        node.ops = []
        for succ in list(node.succs):
            graph.remove_edge(nid, succ)
        graph.remove_node(nid)
    for succ in tail_succs:
        graph.add_edge(run[0], succ)
