"""ASIP synthesis model — closing the paper's Figure-1 loop.

The analysis side of the paper hands the designer a ranked list of chainable
sequences.  This package models the design side: a single-issue base
processor (TMS320-class, the paper's motivating example) extended with
*chained instructions* synthesized from chosen sequences.

* :mod:`repro.asip.isa` — the instruction-set model and chained extensions;
* :mod:`repro.asip.cost` — functional-unit area/delay tables and the chain
  cost model;
* :mod:`repro.asip.select` — chain-aware instruction selection: rewrite a
  sequential program graph, fusing matched sequences into single-cycle
  chained instructions;
* :mod:`repro.asip.evaluate` — execute base and chained binaries on the
  simulator and report real measured speedup;
* :mod:`repro.asip.explore` — budgeted design-space exploration: pick the
  chain set maximizing speedup under an area budget.
"""

from repro.asip.isa import ChainedInstruction, InstructionSet
from repro.asip.cost import CostModel, DEFAULT_COST_MODEL
from repro.asip.select import FusedInstruction, select_chains, SelectionStats
from repro.asip.evaluate import AsipEvaluation, evaluate_isa
from repro.asip.explore import ExplorationResult, explore_designs

__all__ = [
    "ChainedInstruction",
    "InstructionSet",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "FusedInstruction",
    "select_chains",
    "SelectionStats",
    "AsipEvaluation",
    "evaluate_isa",
    "ExplorationResult",
    "explore_designs",
]
