"""Instruction-set model: the base single-issue ISA plus chained extensions.

A :class:`ChainedInstruction` is the hardware realization of one detected
sequence — the multiply-accumulate of a TMS320C5x is
``ChainedInstruction("mac", ("multiply", "add"))``.  An
:class:`InstructionSet` is the base ISA plus a set of such extensions with
their total area charge under a :class:`~repro.asip.cost.CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.asip.cost import CostModel, DEFAULT_COST_MODEL
from repro.chaining.sequence import SequenceName, sequence_label
from repro.errors import AsipError


@dataclass(frozen=True)
class ChainedInstruction:
    """One chained-operation instruction of the extended ISA."""

    name: str
    pattern: SequenceName

    def __post_init__(self):
        if len(self.pattern) < 2:
            raise AsipError(
                f"chained instruction {self.name!r} needs >= 2 operations")
        object.__setattr__(self, "pattern", tuple(self.pattern))

    @property
    def length(self) -> int:
        return len(self.pattern)

    @property
    def label(self) -> str:
        return sequence_label(self.pattern)

    def area(self, cost: CostModel = DEFAULT_COST_MODEL) -> int:
        return cost.chain_area(self.pattern)

    def cycles(self, cost: CostModel = DEFAULT_COST_MODEL) -> int:
        return cost.chain_cycles(self.pattern)

    @classmethod
    def from_sequence(cls, name: SequenceName,
                      index: Optional[int] = None) -> "ChainedInstruction":
        """Synthesize an instruction for a detected sequence name."""
        mnemonic = "chn_" + "_".join(name)
        if index is not None:
            mnemonic = f"{mnemonic}_{index}"
        return cls(mnemonic, tuple(name))


@dataclass
class InstructionSet:
    """The base ISA plus a set of chained extensions."""

    chains: List[ChainedInstruction] = field(default_factory=list)
    cost_model: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)

    def add_chain(self, chain: ChainedInstruction) -> None:
        if any(c.pattern == chain.pattern for c in self.chains):
            raise AsipError(
                f"duplicate chain pattern {chain.label!r} in the ISA")
        self.chains.append(chain)

    def extension_area(self) -> int:
        """Total silicon charged for the chained extensions."""
        return sum(c.area(self.cost_model) for c in self.chains)

    def patterns(self) -> List[SequenceName]:
        return [c.pattern for c in self.chains]

    def find(self, pattern: Sequence[str]) -> Optional[ChainedInstruction]:
        pattern = tuple(pattern)
        for c in self.chains:
            if c.pattern == pattern:
                return c
        return None

    def __repr__(self) -> str:
        labels = ", ".join(c.label for c in self.chains) or "base only"
        return f"<InstructionSet {labels}; area {self.extension_area()}>"
