"""Re-sequentialize a compacted VLIW graph for a single-issue ASIP.

The paper's end product (Figure 1) is a *single-issue* ASIP with chained
instructions plus a customized compiler whose scheduling exposes the chains.
We model that compiler by taking the percolation-scheduled graph — where
motion has already placed producers next to consumers — and flattening it
back to one operation per node, preserving the adjacency the motion created:

* node-internal ops are ordered so that an op consumed by the *next* node
  comes last and an op consuming the *previous* node's result comes first;
* sequentializing a parallel node must respect its internal
  anti-dependences (parallel ops read pre-cycle values).  Readers are
  ordered before writers; genuine read/write cycles (register swaps) and
  branch conditions overwritten in their own node are broken by *capture
  moves* (``t = mov r`` inserted up front, readers retargeted to ``t``).

The result is a graph the chain selector (:mod:`repro.asip.select`) can
pattern-match directly, and whose simulated cycle count is the single-issue
ASIP's real schedule length.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.cfg.graph import GraphModule, Node, ProgramGraph
from repro.errors import AsipError
from repro.ir.instr import Instruction
from repro.ir.ops import Op
from repro.ir.values import VirtualReg


def resequence_module(module: GraphModule) -> GraphModule:
    """Flatten every graph of *module* to one operation per node."""
    flat, _mapping = resequence_module_mapped(module)
    return flat


def resequence_module_mapped(module: GraphModule
                             ) -> Tuple[GraphModule, Dict]:
    """:func:`resequence_module` plus the node expansion it performed.

    The second element maps ``{graph name: {original node id: tuple of
    sequential node ids}}``.  Because every sequential node in a chain
    executes exactly as often as the original node it came from (control
    always enters a chain at its head and placeholders for empty nodes
    are spliced away, mapping to ``()``), a profile of the original
    graph determines the sequential graph's node counts exactly — the
    exploration executor uses this to *derive* the single-issue base
    processor's cycle count from the VLIW profiling run instead of
    simulating the sequential program a second time.
    """
    graphs = {}
    mapping: Dict[str, Dict[int, Tuple[int, ...]]] = {}
    for name, g in module.graphs.items():
        graphs[name], mapping[name] = _resequence_graph(g)
    flat = GraphModule(
        module.name,
        graphs,
        module.global_arrays,
        module.array_initializers,
        module.global_scalars,
    )
    return flat, mapping


def _resequence_graph(graph: ProgramGraph
                      ) -> Tuple[ProgramGraph, Dict[int, Tuple[int, ...]]]:
    out = ProgramGraph(graph.name, graph.params, graph.local_arrays,
                       graph.return_type)
    order = graph.rpo_order()
    # For adjacency-preserving intra-node ordering we need, per node, which
    # registers the following node consumes and which registers the
    # preceding node produced.  With multiple successors/predecessors we
    # use the union — a heuristic, as any ordering is semantically valid.
    produced_by: Dict[int, Set[str]] = {}
    consumed_by: Dict[int, Set[str]] = {}
    for nid in order:
        node = graph.nodes[nid]
        produced_by[nid] = {d.name for op in node.ops for d in op.defs()}
        consumed_by[nid] = {u.name for op in node.ops for u in op.uses()}

    first_of: Dict[int, int] = {}  # original node id -> first new node id
    last_of: Dict[int, int] = {}   # original node id -> last new node id
    chain_of: Dict[int, List[int]] = {}  # original node id -> its chain

    for nid in order:
        node = graph.nodes[nid]
        prev_produced: Set[str] = set()
        for p in node.preds:
            prev_produced |= produced_by.get(p, set())
        next_consumed: Set[str] = set()
        for s in node.succs:
            next_consumed |= consumed_by.get(s, set())

        control_clone = (node.control.clone()
                         if node.control is not None else None)
        ops = _sequential_order(out, node, control_clone,
                                prev_produced, next_consumed)
        new_ids: List[int] = []
        for op in ops:
            fresh = out.new_node()
            fresh.ops.append(op)
            new_ids.append(fresh.id)
        if control_clone is not None:
            fresh = out.new_node()
            fresh.control = control_clone
            new_ids.append(fresh.id)
        if not new_ids:  # empty node: keep a placeholder to carry edges
            fresh = out.new_node()
            new_ids.append(fresh.id)
        for a, b in zip(new_ids, new_ids[1:]):
            out.add_edge(a, b)
        first_of[nid] = new_ids[0]
        last_of[nid] = new_ids[-1]
        chain_of[nid] = new_ids

    for nid in order:
        for succ in graph.nodes[nid].succs:
            out.add_edge(last_of[nid], first_of[succ])
    out.entry = first_of[graph.entry]
    # Splice out placeholder nodes kept for originally empty nodes.
    from repro.opt.percolation import delete_empty_nodes
    delete_empty_nodes(out)
    expansion = {nid: tuple(i for i in chain_of[nid] if i in out.nodes)
                 for nid in order}
    return out, expansion


def _sequential_order(out: ProgramGraph, node: Node, control_clone,
                      prev_produced: Set[str],
                      next_consumed: Set[str]) -> List[Instruction]:
    """Order one node's parallel ops for sequential execution.

    Within the node every op reads pre-cycle values, so a reader of a
    register must run before its writer (anti-dependence).  Among valid
    orders we prefer consumers of the previous node's outputs early and
    producers for the next node late.  Returns cloned instructions,
    possibly preceded by capture moves.
    """
    ops = [op.clone() for op in node.ops]
    control = control_clone
    captures: List[Instruction] = []

    # Capture registers the control instruction reads but the node writes:
    # the branch must see the pre-cycle value even though it executes last
    # in the sequential order.  The caller passes the control *clone*, so
    # retargeting here never touches the input graph.
    writers: Dict[str, Instruction] = {}
    for op in ops:
        for d in op.defs():
            writers[d.name] = op

    def capture(reg: VirtualReg) -> VirtualReg:
        temp = out.new_temp(reg.is_float)
        mov = Instruction(Op.FMOV if reg.is_float else Op.MOV,
                          dest=temp, srcs=(reg,))
        captures.append(mov)
        return temp

    captured: Dict[str, VirtualReg] = {}

    # Handle control reads of node-written registers.
    if control is not None:
        for reg in control.uses():
            if reg.name in writers and reg.name not in captured:
                captured[reg.name] = capture(reg)

    # Anti-dependence graph among ops: edge reader -> writer.
    edges: Dict[int, Set[int]] = {i: set() for i in range(len(ops))}
    indeg = [0] * len(ops)

    def build_edges() -> bool:
        for i in range(len(ops)):
            edges[i] = set()
        for i, op in enumerate(ops):
            for reg in op.uses():
                if reg.name in captured:
                    continue
                w = writers.get(reg.name)
                if w is not None and w is not op:
                    j = ops.index(w)
                    edges[i].add(j)
        for i in range(len(ops)):
            indeg[i] = 0
        for i in range(len(ops)):
            for j in edges[i]:
                indeg[j] += 1
        return True

    # Break cycles by capturing registers until a topological order exists.
    for _ in range(len(ops) + 1):
        build_edges()
        if _topo_possible(edges, len(ops)):
            break
        # Find any register participating in a cycle and capture it.
        reg = _find_cycle_register(ops, writers, captured)
        if reg is None:  # pragma: no cover - defensive
            raise AsipError("cannot sequentialize node: unbreakable cycle")
        captured[reg.name] = capture(reg)

    # Retarget readers of captured registers.
    if captured:
        mapping = dict(captured)
        for op in ops:
            op.replace_uses({VirtualReg(name, t.is_float): t
                             for name, t in mapping.items()})
        if control is not None:
            control.replace_uses({VirtualReg(name, t.is_float): t
                                  for name, t in mapping.items()})

    ordered = _priority_topo(ops, edges, prev_produced, next_consumed)
    return captures + ordered


def _topo_possible(edges: Dict[int, Set[int]], n: int) -> bool:
    indeg = [0] * n
    for i in range(n):
        for j in edges[i]:
            indeg[j] += 1
    ready = [i for i in range(n) if indeg[i] == 0]
    seen = 0
    while ready:
        i = ready.pop()
        seen += 1
        for j in edges[i]:
            indeg[j] -= 1
            if indeg[j] == 0:
                ready.append(j)
    return seen == n


def _find_cycle_register(ops, writers, captured):
    """Pick a register to capture: any node-written register still read
    by a different op (cheap heuristic; capturing always removes edges)."""
    for op in ops:
        for reg in op.uses():
            if reg.name in captured:
                continue
            w = writers.get(reg.name)
            if w is not None and w is not op:
                return reg
    return None


def _priority_topo(ops: List[Instruction], edges: Dict[int, Set[int]],
                   prev_produced: Set[str],
                   next_consumed: Set[str]) -> List[Instruction]:
    """Topological order with adjacency-friendly tie-breaking."""
    n = len(ops)
    indeg = [0] * n
    for i in range(n):
        for j in edges[i]:
            indeg[j] += 1

    def priority(i: int) -> Tuple[int, int, int]:
        op = ops[i]
        consumes_prev = any(u.name in prev_produced for u in op.uses())
        feeds_next = any(d.name in next_consumed for d in op.defs())
        # Lower sorts earlier: prev-consumers first, next-feeders last.
        return (0 if consumes_prev else 1, 1 if feeds_next else 0, i)

    ready = sorted((i for i in range(n) if indeg[i] == 0), key=priority)
    order: List[int] = []
    while ready:
        i = ready.pop(0)
        order.append(i)
        changed = False
        for j in edges[i]:
            indeg[j] -= 1
            if indeg[j] == 0:
                ready.append(j)
                changed = True
        if changed:
            ready.sort(key=priority)
    if len(order) != n:  # pragma: no cover - cycles were broken above
        raise AsipError("internal: leftover cycle in node sequentialization")
    return [ops[i] for i in order]
