"""Measured evaluation of a chained-instruction ISA.

``evaluate_isa`` runs the whole paper loop for one design point:

1. optimize the program at a chosen level (the "customized optimizing
   compiler" of Figure 1);
2. re-sequentialize the schedule for the single-issue ASIP;
3. simulate **without** chains — the base processor's cycle count;
4. select chains and simulate **with** them — the ASIP's cycle count,
   charging multi-cycle chains their extra issue cycles;
5. verify both runs produce bit-identical outputs (a failed check would
   mean the selector broke the program — it raises, never under-reports).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.asip.cost import CostModel, DEFAULT_COST_MODEL
from repro.asip.isa import InstructionSet
from repro.asip.resequence import resequence_module
from repro.asip.select import FusedInstruction, SelectionStats, select_chains
from repro.cfg.graph import GraphModule
from repro.errors import AsipError
from repro.ir.module import Module
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim.machine import (DEFAULT_ENGINE, MachineResult, run_module,
                               run_module_batch_auto)


@dataclass
class AsipEvaluation:
    """One measured design point."""

    base_cycles: int
    chained_cycles: int
    extension_area: int
    selection: SelectionStats
    # chain pattern -> dynamic issue count
    chain_issues: Dict[Tuple[str, ...], int] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.chained_cycles == 0:
            return 0.0
        return self.base_cycles / self.chained_cycles

    @property
    def cycles_saved(self) -> int:
        return self.base_cycles - self.chained_cycles

    def __repr__(self) -> str:
        return (f"<AsipEvaluation {self.base_cycles} -> "
                f"{self.chained_cycles} cycles "
                f"({self.speedup:.3f}x, area {self.extension_area})>")


def _chain_accounting(fused_module: GraphModule,
                      fused_result: MachineResult, cost: CostModel
                      ) -> Tuple[int, Dict[Tuple[str, ...], int]]:
    """(extra issue cycles, per-pattern dynamic issue counts) of one run."""
    extra_cycles = 0
    chain_issues: Dict[Tuple[str, ...], int] = {}
    for fn_name, graph in fused_module.graphs.items():
        counts = fused_result.profile.node_counts.get(fn_name, {})
        for nid, node in graph.nodes.items():
            for ins in node.ops:
                if not isinstance(ins, FusedInstruction):
                    continue
                executed = counts.get(nid, 0)
                pattern = tuple(ins.chain.pattern)
                chain_issues[pattern] = \
                    chain_issues.get(pattern, 0) + executed
                extra = cost.chain_cycles(pattern) - 1
                if extra > 0:
                    extra_cycles += extra * executed
    return extra_cycles, chain_issues


def evaluate_on_sequential(seq_module: GraphModule, isa: InstructionSet,
                           inputs: Optional[dict] = None,
                           cost_model: Optional[CostModel] = None,
                           base_result: Optional[MachineResult] = None,
                           engine: str = DEFAULT_ENGINE) -> AsipEvaluation:
    """Evaluate *isa* against an already re-sequentialized module.

    ``base_result`` may carry a previous simulation of *seq_module* on the
    same inputs; the exploration loop passes it so the unchained base
    processor is simulated once per benchmark instead of once per finalist.
    """
    cost = cost_model or isa.cost_model or DEFAULT_COST_MODEL
    if base_result is None:
        base_result = run_module(seq_module, inputs, engine=engine)

    fused_module = seq_module.copy()
    stats = select_chains(fused_module, isa)
    fused_result = run_module(fused_module, inputs, engine=engine)

    if fused_result.globals_after != base_result.globals_after \
            or fused_result.return_value != base_result.return_value:
        raise AsipError(
            "chained execution diverged from the base processor — "
            "instruction selection broke program semantics")

    extra_cycles, chain_issues = _chain_accounting(fused_module,
                                                   fused_result, cost)
    return AsipEvaluation(
        base_cycles=base_result.cycles,
        chained_cycles=fused_result.cycles + extra_cycles,
        extension_area=isa.extension_area(),
        selection=stats,
        chain_issues=chain_issues,
    )


def evaluate_on_sequential_batch(seq_module: GraphModule,
                                 isa: InstructionSet,
                                 inputs_list: Sequence[Optional[dict]],
                                 cost_model: Optional[CostModel] = None,
                                 base_results: Optional[
                                     Sequence[MachineResult]] = None,
                                 engine: str = DEFAULT_ENGINE
                                 ) -> Tuple[AsipEvaluation, ...]:
    """Evaluate *isa* on several input sets through one chain selection.

    The multi-seed form of :func:`evaluate_on_sequential`: chains are
    selected once (selection is input-independent) and every input set
    is batched through the fused program, so an N-seed finalist pays one
    module copy and one compile instead of N.  Element *i* of the result
    is bit-identical to ``evaluate_on_sequential(seq_module, isa,
    inputs_list[i], ..., base_result=base_results[i])``.
    """
    cost = cost_model or isa.cost_model or DEFAULT_COST_MODEL
    if base_results is None:
        base_results = run_module_batch_auto(seq_module, inputs_list,
                                             engine=engine)
    if len(base_results) != len(inputs_list):
        raise AsipError(
            f"base results cover {len(base_results)} runs but the batch "
            f"has {len(inputs_list)} input sets")
    fused_module = seq_module.copy()
    stats = select_chains(fused_module, isa)
    fused_results = run_module_batch_auto(fused_module, inputs_list,
                                          engine=engine)
    evaluations = []
    for fused_result, base_result in zip(fused_results, base_results):
        if fused_result.globals_after != base_result.globals_after \
                or fused_result.return_value != base_result.return_value:
            raise AsipError(
                "chained execution diverged from the base processor — "
                "instruction selection broke program semantics")
        extra_cycles, chain_issues = _chain_accounting(
            fused_module, fused_result, cost)
        evaluations.append(AsipEvaluation(
            base_cycles=base_result.cycles,
            chained_cycles=fused_result.cycles + extra_cycles,
            extension_area=isa.extension_area(),
            selection=stats,
            chain_issues=chain_issues,
        ))
    return tuple(evaluations)


def merge_evaluations(evaluations: Sequence[AsipEvaluation]
                      ) -> AsipEvaluation:
    """Fold per-seed evaluations of one design point into one.

    Cycle totals and dynamic chain-issue counts sum across seeds (so
    ``speedup`` becomes the whole-workload ratio, weighting every seed
    by its own run length); the selection statistics and extension area
    are structural and identical for every seed, so the first seed's
    are kept.  A single-element merge is the identity.
    """
    if not evaluations:
        raise AsipError("cannot merge zero evaluations")
    if len(evaluations) == 1:
        return evaluations[0]
    chain_issues: Dict[Tuple[str, ...], int] = {}
    for evaluation in evaluations:
        for pattern, count in evaluation.chain_issues.items():
            chain_issues[pattern] = chain_issues.get(pattern, 0) + count
    return AsipEvaluation(
        base_cycles=sum(e.base_cycles for e in evaluations),
        chained_cycles=sum(e.chained_cycles for e in evaluations),
        extension_area=evaluations[0].extension_area,
        selection=evaluations[0].selection,
        chain_issues=chain_issues,
    )


def evaluate_isa(module: Module, isa: InstructionSet,
                 inputs: Optional[dict] = None,
                 level: OptLevel = OptLevel.PIPELINED,
                 unroll_factor: int = 2,
                 cost_model: Optional[CostModel] = None,
                 engine: str = DEFAULT_ENGINE) -> AsipEvaluation:
    """Full-loop evaluation of *isa* on linear *module* at *level*."""
    graph_module, _ = optimize_module(module, level,
                                      unroll_factor=unroll_factor)
    sequential = resequence_module(graph_module)
    return evaluate_on_sequential(sequential, isa, inputs, cost_model,
                                  engine=engine)
