"""Measured evaluation of a chained-instruction ISA.

``evaluate_isa`` runs the whole paper loop for one design point:

1. optimize the program at a chosen level (the "customized optimizing
   compiler" of Figure 1);
2. re-sequentialize the schedule for the single-issue ASIP;
3. simulate **without** chains — the base processor's cycle count;
4. select chains and simulate **with** them — the ASIP's cycle count,
   charging multi-cycle chains their extra issue cycles;
5. verify both runs produce bit-identical outputs (a failed check would
   mean the selector broke the program — it raises, never under-reports).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.asip.cost import CostModel, DEFAULT_COST_MODEL
from repro.asip.isa import InstructionSet
from repro.asip.resequence import resequence_module
from repro.asip.select import FusedInstruction, SelectionStats, select_chains
from repro.cfg.graph import GraphModule
from repro.errors import AsipError
from repro.ir.module import Module
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim.machine import DEFAULT_ENGINE, MachineResult, run_module


@dataclass
class AsipEvaluation:
    """One measured design point."""

    base_cycles: int
    chained_cycles: int
    extension_area: int
    selection: SelectionStats
    # chain pattern -> dynamic issue count
    chain_issues: Dict[Tuple[str, ...], int] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.chained_cycles == 0:
            return 0.0
        return self.base_cycles / self.chained_cycles

    @property
    def cycles_saved(self) -> int:
        return self.base_cycles - self.chained_cycles

    def __repr__(self) -> str:
        return (f"<AsipEvaluation {self.base_cycles} -> "
                f"{self.chained_cycles} cycles "
                f"({self.speedup:.3f}x, area {self.extension_area})>")


def evaluate_on_sequential(seq_module: GraphModule, isa: InstructionSet,
                           inputs: Optional[dict] = None,
                           cost_model: Optional[CostModel] = None,
                           base_result: Optional[MachineResult] = None,
                           engine: str = DEFAULT_ENGINE) -> AsipEvaluation:
    """Evaluate *isa* against an already re-sequentialized module.

    ``base_result`` may carry a previous simulation of *seq_module* on the
    same inputs; the exploration loop passes it so the unchained base
    processor is simulated once per benchmark instead of once per finalist.
    """
    cost = cost_model or isa.cost_model or DEFAULT_COST_MODEL
    if base_result is None:
        base_result = run_module(seq_module, inputs, engine=engine)

    fused_module = seq_module.copy()
    stats = select_chains(fused_module, isa)
    fused_result = run_module(fused_module, inputs, engine=engine)

    if fused_result.globals_after != base_result.globals_after \
            or fused_result.return_value != base_result.return_value:
        raise AsipError(
            "chained execution diverged from the base processor — "
            "instruction selection broke program semantics")

    extra_cycles = 0
    chain_issues: Dict[Tuple[str, ...], int] = {}
    for fn_name, graph in fused_module.graphs.items():
        counts = fused_result.profile.node_counts.get(fn_name, {})
        for nid, node in graph.nodes.items():
            for ins in node.ops:
                if not isinstance(ins, FusedInstruction):
                    continue
                executed = counts.get(nid, 0)
                pattern = tuple(ins.chain.pattern)
                chain_issues[pattern] = \
                    chain_issues.get(pattern, 0) + executed
                extra = cost.chain_cycles(pattern) - 1
                if extra > 0:
                    extra_cycles += extra * executed

    return AsipEvaluation(
        base_cycles=base_result.cycles,
        chained_cycles=fused_result.cycles + extra_cycles,
        extension_area=isa.extension_area(),
        selection=stats,
        chain_issues=chain_issues,
    )


def evaluate_isa(module: Module, isa: InstructionSet,
                 inputs: Optional[dict] = None,
                 level: OptLevel = OptLevel.PIPELINED,
                 unroll_factor: int = 2,
                 cost_model: Optional[CostModel] = None,
                 engine: str = DEFAULT_ENGINE) -> AsipEvaluation:
    """Full-loop evaluation of *isa* on linear *module* at *level*."""
    graph_module, _ = optimize_module(module, level,
                                      unroll_factor=unroll_factor)
    sequential = resequence_module(graph_module)
    return evaluate_on_sequential(sequential, isa, inputs, cost_model,
                                  engine=engine)
