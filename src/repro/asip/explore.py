"""Budgeted design-space exploration over chain sets.

Given a benchmark and an area budget, pick the set of chained instructions
that maximizes measured speedup:

1. run the paper's analysis (optimize, profile, detect) to rank candidate
   sequences by dynamic frequency;
2. estimate each candidate's value as ``frequency × cycles-saved-per-
   traversal / length`` — the share of execution time it could remove;
3. enumerate candidate subsets under the budget (the candidate list is
   small, so exhaustive enumeration with the additive estimate is exact for
   the estimator), keep the top few plus the greedy value-density pick;
4. *measure* each finalist with
   :func:`~repro.asip.evaluate.evaluate_on_sequential` and return the
   measured winner.

This is deliberately a two-stage estimate-then-measure loop: the estimate
is optimistic (it ignores overlap between candidates — an op fused into one
chain cannot join another), so the final ranking always comes from the
simulator.
"""

from __future__ import annotations

import itertools
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.asip.cost import CostModel, DEFAULT_COST_MODEL
from repro.asip.evaluate import AsipEvaluation, evaluate_on_sequential
from repro.asip.isa import ChainedInstruction, InstructionSet
from repro.asip.resequence import resequence_module
from repro.chaining.detect import detect_sequences
from repro.chaining.frequency import dynamic_frequency
from repro.chaining.sequence import SequenceName, sequence_label
from repro.errors import AsipError
from repro.exec.pool import parallel_map
from repro.ir.module import Module
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim.machine import DEFAULT_ENGINE, run_module


@dataclass
class Candidate:
    """One sequence considered for hardware."""

    pattern: SequenceName
    frequency: float       # dynamic frequency (%) from the analysis
    area: int
    cycles_saved: int      # per traversal
    #: Op-slots of execution time the analysis attributed to the pattern
    #: (the numerator of ``frequency``); cross-benchmark aggregation
    #: re-weights it by each benchmark's share of suite dynamic ops.
    cycles_accounted: int = 0

    @property
    def estimate(self) -> float:
        """Estimated % of execution time removed if fully exploited."""
        return self.frequency * self.cycles_saved / len(self.pattern)

    @property
    def label(self) -> str:
        return sequence_label(self.pattern)


@dataclass
class DesignPoint:
    """A measured ISA design."""

    isa: InstructionSet
    evaluation: AsipEvaluation

    @property
    def speedup(self) -> float:
        return self.evaluation.speedup

    @property
    def area(self) -> int:
        return self.evaluation.extension_area

    def labels(self) -> List[str]:
        return [c.label for c in self.isa.chains]


@dataclass
class ExplorationResult:
    """Everything one exploration produced."""

    candidates: List[Candidate]
    measured: List[DesignPoint] = field(default_factory=list)

    @property
    def best(self) -> Optional[DesignPoint]:
        if not self.measured:
            return None
        return max(self.measured, key=lambda p: p.speedup)


def _isa_for(patterns: Sequence[SequenceName],
             cost: CostModel) -> InstructionSet:
    isa = InstructionSet(cost_model=cost)
    for pattern in patterns:
        isa.add_chain(ChainedInstruction.from_sequence(pattern))
    return isa


def _measure_finalist(task) -> Tuple[InstructionSet, AsipEvaluation]:
    """Measure one finalist ISA (module-level: runs in pool workers)."""
    sequential, patterns, inputs, cost, base_result, engine = task
    isa = _isa_for(patterns, cost)
    evaluation = evaluate_on_sequential(sequential, isa, inputs, cost,
                                        base_result=base_result,
                                        engine=engine)
    return isa, evaluation


# -- the estimate-then-measure stages, exposed for the suite-wide executor --------
#
# ``explore_designs`` composes these three pure helpers; the exploration
# *study* (:mod:`repro.exec.explore`) runs the same helpers from
# scheduler tasks, which is what makes its results bit-identical to the
# per-benchmark loop.


def candidate_pool(detection, cost: CostModel) -> List[Candidate]:
    """Every sequence that could ever be worth hardware, budget-agnostic.

    Applies only the budget-*independent* filters (a chain must save
    cycles and actually execute); the area-vs-budget cut happens in
    :func:`rank_candidates`, so one pool serves every budget of a study.
    """
    pool: List[Candidate] = []
    for seq in detection.all_sequences():
        freq = dynamic_frequency(seq.cycles_accounted, detection.total_ops)
        saved = cost.cycles_saved_per_traversal(seq.name)
        area = cost.chain_area(seq.name)
        if saved <= 0 or freq <= 0.0:
            continue
        pool.append(Candidate(tuple(seq.name), freq, area, saved,
                              cycles_accounted=seq.cycles_accounted))
    return pool


def rank_candidates(pool: Sequence[Candidate], area_budget: int,
                    max_candidates: int) -> List[Candidate]:
    """The budget's candidate list: affordable, best-estimate-first."""
    candidates = [c for c in pool if c.area <= area_budget]
    candidates.sort(key=lambda c: (-c.estimate, c.pattern))
    return candidates[:max_candidates]


def select_finalists(candidates: Sequence[Candidate], area_budget: int,
                     measure_top: int) -> List[Tuple[int, ...]]:
    """The candidate-index subsets worth simulating, in canonical order.

    Stage 1 of the paper loop: exhaustive enumeration under the additive
    estimate (exact for the estimator on these small candidate lists),
    keeping the ``measure_top`` best subsets plus the greedy
    value-density pick.  Deterministic in its inputs; the returned order
    is the order the measured design points appear in.
    """
    # ``estimate`` is an uncached property; the exhaustive enumeration
    # below reads it O(2^n) times per candidate, so both it and the area
    # are hoisted into plain lists once per call.
    areas = [c.area for c in candidates]
    estimates = [c.estimate for c in candidates]
    scored: List[Tuple[float, Tuple[int, ...]]] = []
    indices = range(len(candidates))
    for r in range(1, len(candidates) + 1):
        for combo in itertools.combinations(indices, r):
            area = sum(areas[i] for i in combo)
            if area > area_budget:
                continue
            estimate = sum(estimates[i] for i in combo)
            scored.append((estimate, combo))
    scored.sort(key=lambda item: (-item[0], item[1]))

    greedy: List[int] = []
    remaining = area_budget
    for i in sorted(indices, key=lambda i: -estimates[i] / max(1, areas[i])):
        if areas[i] <= remaining:
            greedy.append(i)
            remaining -= areas[i]
    finalists = {tuple(sorted(greedy))} if greedy else set()
    for _, combo in scored[:measure_top]:
        finalists.add(combo)
    return sorted(finalists)


def explore_designs(module: Module,
                    inputs: Optional[dict] = None,
                    area_budget: int = 3000,
                    level: OptLevel = OptLevel.PIPELINED,
                    lengths: Sequence[int] = (2, 3),
                    max_candidates: int = 8,
                    measure_top: int = 4,
                    unroll_factor: int = 2,
                    cost_model: Optional[CostModel] = None,
                    engine: str = DEFAULT_ENGINE,
                    jobs: Optional[int] = None) -> ExplorationResult:
    """Run the full feedback-driven exploration for one benchmark.

    ``jobs`` parallelizes stage 2, the finalist measurements — each
    finalist's chain selection and simulation is independent given the
    shared base-processor result, so they fan out across a process pool.
    The measured design points come back in the same deterministic
    finalist order as the serial loop (``jobs=None``/1, bit-identical).
    """
    from repro.sim.machine import ensure_engine
    ensure_engine(engine)  # before the pipeline, not deep in a worker
    cost = cost_model or DEFAULT_COST_MODEL
    graph_module, _ = optimize_module(module, level,
                                      unroll_factor=unroll_factor)
    profile = run_module(graph_module, inputs, engine=engine).profile
    detection = detect_sequences(graph_module, profile, lengths)

    candidates = rank_candidates(candidate_pool(detection, cost),
                                 area_budget, max_candidates)
    result = ExplorationResult(candidates=candidates)
    if not candidates:
        return result

    # Stage 1: additive-estimate enumeration under the budget, plus the
    # greedy value-density pick.
    combos = select_finalists(candidates, area_budget, measure_top)

    # Stage 2: measure each finalist on the simulator.  Every finalist
    # shares the same unchained base processor, so simulate it exactly once
    # and hand the cached result to each evaluation; the compiled engine
    # additionally reuses the base module's compilation across finalists.
    # With jobs > 1 the finalists are measured on a process pool.
    sequential = resequence_module(graph_module)
    base_result = run_module(sequential, inputs, engine=engine)
    patterns = [tuple(candidates[idx].pattern for idx in combo)
                for combo in combos]
    measured = parallel_map(
        _measure_finalist,
        [(sequential, pats, inputs, cost, base_result, engine)
         for pats in patterns],
        jobs=jobs)
    for isa, evaluation in measured:
        result.measured.append(DesignPoint(isa=isa, evaluation=evaluation))
    return result


# -- the incremental Pareto-frontier sweep ----------------------------------------
#
# ``explore-study`` answers one budget per cell by re-running
# ``rank_candidates``/``select_finalists``.  Both stages are piecewise
# constant in the budget: the ranked candidate list changes only where
# the budget crosses a candidate's area, and — with the candidate list
# fixed — the finalist subsets (exhaustive enumeration *and* the greedy
# value-density pick) change only where the budget crosses the summed
# area of some candidate subset.  ``frontier_sweep`` walks those
# breakpoints once, in increasing-area order, and emits one segment per
# distinct answer, so *any* budget query is a bisection into the
# segment list instead of a fresh rank/select/measure pass.


@dataclass(frozen=True)
class FrontierSegment:
    """One constant piece of the budget → exploration answer function.

    The segment answers every budget in ``[budget, next segment's
    budget)`` — for all of them, ``rank_candidates`` returns exactly the
    pool entries named by ``candidate_indices`` (in ranked order) and
    ``select_finalists`` returns exactly ``combos`` (indices into that
    ranked list, canonical order).
    """

    budget: int
    candidate_indices: Tuple[int, ...]
    combos: Tuple[Tuple[int, ...], ...]


@dataclass
class Frontier:
    """The full cost/performance frontier of one candidate pool.

    Segments are sorted by ascending ``budget``; budgets below the first
    segment afford no candidate and answer as an empty exploration.
    """

    pool: List[Candidate]
    max_candidates: int
    measure_top: int
    #: Budget ceiling the sweep covered (``None`` = unbounded: queries
    #: above the last breakpoint hit the final, fully-afforded segment).
    max_budget: Optional[int]
    segments: List[FrontierSegment] = field(default_factory=list)

    def breakpoints(self) -> List[int]:
        return [segment.budget for segment in self.segments]

    def segment_at(self, budget: int) -> Optional[FrontierSegment]:
        """The segment answering *budget* (``None`` below the first)."""
        if self.max_budget is not None and budget > self.max_budget:
            raise AsipError(
                f"budget {budget} is beyond this frontier's sweep limit "
                f"({self.max_budget}); re-sweep with a higher max_budget")
        at = bisect_right([s.budget for s in self.segments], budget) - 1
        return self.segments[at] if at >= 0 else None

    def candidates_at(self, budget: int) -> List[Candidate]:
        segment = self.segment_at(budget)
        if segment is None:
            return []
        return [self.pool[i] for i in segment.candidate_indices]

    def segment_patterns(self, segment: FrontierSegment
                         ) -> List[Tuple[SequenceName, ...]]:
        """Each finalist combo of *segment* as its chain-pattern tuple."""
        return [tuple(self.pool[segment.candidate_indices[i]].pattern
                      for i in combo)
                for combo in segment.combos]

    def pattern_sets(self) -> List[Tuple[SequenceName, ...]]:
        """Every distinct finalist chain set on the frontier.

        First-appearance order (segments by ascending budget, combos in
        canonical order) — the measurement schedule and the reassembly
        both iterate this list, so the order must be a pure function of
        the frontier.
        """
        seen: Dict[Tuple[SequenceName, ...], None] = {}
        for segment in self.segments:
            for patterns in self.segment_patterns(segment):
                seen.setdefault(patterns, None)
        return list(seen)


def _subset_sums(areas: Sequence[int], lo: int,
                 hi: Optional[int]) -> List[int]:
    """Distinct subset-area sums in ``[lo, hi)`` (``hi=None`` = open)."""
    sums = {0}
    for area in areas:
        sums |= {total + area for total in sums}
    return [total for total in sums
            if total >= lo and (hi is None or total < hi)]


def frontier_sweep(pool: Sequence[Candidate],
                   max_candidates: int = 8,
                   measure_top: int = 4,
                   max_budget: Optional[int] = None) -> Frontier:
    """Walk the budget axis once; emit every distinct exploration answer.

    The sweep visits the exact budgets where the per-budget answer can
    change — candidate areas (the ranked list gains an entry) and, per
    constant-candidate interval, the subset-area sums of that interval's
    ranked list (an enumerated subset becomes affordable, or the greedy
    walk's next density-ordered pick starts fitting).  Consecutive
    breakpoints with identical answers coalesce, so the segment list is
    the minimal piecewise-constant representation:
    ``frontier.segment_at(B)`` reproduces ``rank_candidates(pool, B)``
    and ``select_finalists(..., B, ...)`` bit-identically for every
    budget ``B`` (pinned by the fuzz leg in ``tests/test_frontier.py``).
    """
    pool = list(pool)
    index_of = {id(candidate): i for i, candidate in enumerate(pool)}
    frontier = Frontier(pool=pool, max_candidates=max_candidates,
                        measure_top=measure_top, max_budget=max_budget)
    areas = sorted({c.area for c in pool})
    if max_budget is not None:
        areas = [area for area in areas if area <= max_budget]
    breakpoints = set()
    for i, area in enumerate(areas):
        hi = areas[i + 1] if i + 1 < len(areas) else None
        candidates = rank_candidates(pool, area, max_candidates)
        breakpoints.add(area)
        for total in _subset_sums([c.area for c in candidates], area, hi):
            if max_budget is None or total <= max_budget:
                breakpoints.add(total)
    previous = None
    for budget in sorted(breakpoints):
        candidates = rank_candidates(pool, budget, max_candidates)
        combos = tuple(select_finalists(candidates, budget, measure_top))
        indices = tuple(index_of[id(c)] for c in candidates)
        if (indices, combos) == previous:
            continue  # same answer as the previous breakpoint: coalesce
        previous = (indices, combos)
        frontier.segments.append(FrontierSegment(
            budget=budget, candidate_indices=indices, combos=combos))
    return frontier
