"""Area and delay model for functional units and chained datapaths.

Units are normalized, not process-specific: areas are in "gate units"
roughly proportional to published relative sizes of datapath blocks (a
32-bit multiplier is ~7-8x an adder, an FP multiplier larger still); delays
are in nanoseconds for a nominal mid-90s process, with the base machine's
cycle time sized to its slowest single operation (the memory port / FP
multiply).  What matters for the reproduction is *relative* cost: whether a
chain fits in one cycle and how much area a chain set charges against the
budget — the knobs a DATE-1995 designer would sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.errors import AsipError

#: chain class -> functional unit name
UNIT_OF_CLASS: Dict[str, str] = {
    "add": "alu",
    "subtract": "alu",
    "multiply": "multiplier",
    "divide": "divider",
    "shift": "shifter",
    "logic": "logic",
    "compare": "comparator",
    "load": "memport",
    "store": "memport",
    "fadd": "fp_adder",
    "fsub": "fp_adder",
    "fmultiply": "fp_multiplier",
    "fdivide": "fp_divider",
    "fcompare": "fp_comparator",
    "fload": "memport",
    "fstore": "memport",
    "convert": "converter",
}

_DEFAULT_AREA: Dict[str, int] = {
    "alu": 120,
    "multiplier": 900,
    "divider": 1500,
    "shifter": 80,
    "logic": 40,
    "comparator": 60,
    "memport": 350,
    "fp_adder": 420,
    "fp_multiplier": 1300,
    "fp_divider": 2000,
    "fp_comparator": 90,
    "converter": 160,
}

_DEFAULT_DELAY: Dict[str, float] = {
    "alu": 2.0,
    "multiplier": 5.0,
    "divider": 9.0,
    "shifter": 1.0,
    "logic": 1.0,
    "comparator": 1.5,
    "memport": 4.0,
    "fp_adder": 4.0,
    "fp_multiplier": 6.0,
    "fp_divider": 12.0,
    "fp_comparator": 2.0,
    "converter": 2.5,
}


@dataclass(frozen=True)
class CostModel:
    """Area/delay tables plus the machine cycle time.

    ``chain_overhead_area`` charges the operand-forwarding path and control
    decode each chained instruction adds; the register-file write ports the
    chain *avoids* are credited per internal link.
    """

    area: Dict[str, int] = field(default_factory=lambda: dict(_DEFAULT_AREA))
    delay: Dict[str, float] = field(
        default_factory=lambda: dict(_DEFAULT_DELAY))
    cycle_time: float = 8.0
    chain_overhead_area: int = 45
    link_latch_credit: int = 25

    def unit_of(self, chain_class: str) -> str:
        try:
            return UNIT_OF_CLASS[chain_class]
        except KeyError:
            raise AsipError(f"unknown chain class {chain_class!r}")

    def class_area(self, chain_class: str) -> int:
        return self.area[self.unit_of(chain_class)]

    def class_delay(self, chain_class: str) -> float:
        return self.delay[self.unit_of(chain_class)]

    def chain_area(self, pattern: Sequence[str]) -> int:
        """Silicon cost of one chained instruction's datapath."""
        if len(pattern) < 2:
            raise AsipError("a chain has at least two operations")
        units = sum(self.class_area(c) for c in pattern)
        links = len(pattern) - 1
        return max(0, units + self.chain_overhead_area
                   - links * self.link_latch_credit)

    def chain_delay(self, pattern: Sequence[str]) -> float:
        """Combinational delay of the chained datapath."""
        return sum(self.class_delay(c) for c in pattern)

    def chain_cycles(self, pattern: Sequence[str]) -> int:
        """Cycles one chained instruction issue occupies (≥ 1)."""
        return max(1, math.ceil(self.chain_delay(pattern)
                                / self.cycle_time - 1e-9))

    def cycles_saved_per_traversal(self, pattern: Sequence[str]) -> int:
        """Cycles saved each time a chain replaces its operation sequence."""
        return max(0, len(pattern) - self.chain_cycles(pattern))


DEFAULT_COST_MODEL = CostModel()
