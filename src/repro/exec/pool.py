"""Worker-pool plumbing shared by every parallel entry point.

Two things live here:

* **jobs resolution** — every ``jobs=`` knob in the toolchain accepts
  ``None`` (defer to the ``REPRO_JOBS`` environment variable, default 1),
  ``0`` (one worker per available core) or a positive worker count.
  Parallelism is strictly opt-in: with no knob and no environment
  variable, everything runs on today's serial code paths.
* **``parallel_map``** — an order-preserving map over a process pool,
  used where the work items are independent (the exploration loop's
  finalist measurements).  Dependency-carrying work goes through
  :mod:`repro.exec.scheduler` instead.

Worker processes receive their payloads by pickling, so mapped functions
must be module-level and their arguments picklable; compiled-engine
caches are stripped at the pickle boundary (see
``GraphModule.__getstate__``) and rebuilt lazily in each worker.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

from repro.errors import ReproError

#: Environment variable consulted when a ``jobs=`` knob is ``None``.
JOBS_ENV_VAR = "REPRO_JOBS"

T = TypeVar("T")
R = TypeVar("R")


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs=`` knob to a concrete worker count (>= 1).

    ``None`` defers to ``$REPRO_JOBS`` (absent -> 1, the serial path);
    ``0`` — on the knob or in the variable — means every available core.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR)
        if raw is None or not raw.strip():
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ReproError(
                f"invalid {JOBS_ENV_VAR}={raw!r} (expected an integer)")
    if jobs < 0:
        raise ReproError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return available_cpus()
    return jobs


def parallel_map(fn: Callable[[T], R], items: Iterable[T],
                 jobs: Optional[int] = None) -> List[R]:
    """Map *fn* over *items*, preserving order.

    With an effective worker count of 1 (or fewer than two items) this is
    a plain serial loop — byte-identical behavior, no pool, no pickling.
    Otherwise items are dispatched to a process pool; the first worker
    exception propagates to the caller unchanged.
    """
    items = list(items)
    workers = min(resolve_jobs(jobs), len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))
