"""Worker-pool plumbing shared by every parallel entry point.

Three things live here:

* **jobs resolution** — every ``jobs=`` knob in the toolchain accepts
  ``None`` (defer to the ``REPRO_JOBS`` environment variable, default 1),
  ``0`` (one worker per available core) or a positive worker count.
  Parallelism is strictly opt-in: with no knob and no environment
  variable, everything runs on today's serial code paths.
* **the persistent pool** — worker processes are created lazily on the
  first parallel operation and *reused* across subsequent ones
  (:func:`get_pool`), so repeated ``run_study``/``explore_designs``
  calls stop paying process-pool spin-up per call.  The pool is resized
  only when a different worker count is requested, shut down at
  interpreter exit, and discarded automatically if a worker dies so the
  next operation starts from a healthy pool.
* **``parallel_map``** — an order-preserving map over the pool, used
  where the work items are independent (the exploration loop's finalist
  measurements).  Maps of :data:`PARALLEL_MIN_ITEMS` items or fewer run
  serially: for tiny fan-outs the pickling round-trips alone cost more
  than the work, and the serial path is byte-identical.
  Dependency-carrying work goes through :mod:`repro.exec.scheduler`
  instead.

Worker processes receive their payloads by pickling, so mapped functions
must be module-level and their arguments picklable; compiled-engine
caches are stripped at the pickle boundary (see
``GraphModule.__getstate__``) and rebuilt lazily in each worker.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Hashable, Iterable, List, Optional, \
    TypeVar

from repro.errors import ReproError

#: Environment variable consulted when a ``jobs=`` knob is ``None``.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Maps of this many items or fewer always run serially — pool dispatch
#: (pickling both ways plus scheduling) costs more than it saves on such
#: small work, and results are identical either way.
PARALLEL_MIN_ITEMS = 2

T = TypeVar("T")
R = TypeVar("R")


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs=`` knob to a concrete worker count (>= 1).

    ``None`` defers to ``$REPRO_JOBS`` (absent -> 1, the serial path);
    ``0`` — on the knob or in the variable — means every available core.
    Errors name the environment variable when the value came from it, so
    a CI misconfiguration is diagnosable from the message alone.
    """
    source = None
    if jobs is None:
        raw = os.environ.get(JOBS_ENV_VAR)
        if raw is None or not raw.strip():
            return 1
        source = f" (from {JOBS_ENV_VAR}={raw.strip()!r})"
        try:
            jobs = int(raw)
        except ValueError:
            raise ReproError(
                f"invalid {JOBS_ENV_VAR}={raw!r} (expected an integer)")
    if jobs < 0:
        raise ReproError(
            f"jobs must be >= 0, got {jobs}{source or ''}")
    if jobs == 0:
        return available_cpus()
    return jobs


# -- the per-worker derivation cache -----------------------------------------------

_worker_cache: Dict[Hashable, object] = {}


def worker_cached(key: Hashable, factory: Callable[[], T]) -> T:
    """Per-process memo for deterministic derivations.

    Lives in whichever process calls it: pool workers each keep their own
    copy (it is *not* shipped across the pickle boundary), the serial
    path uses the parent's.  The study executor routes every cell's
    front-end compile through here keyed by benchmark name, so a worker
    that already compiled ``edge`` for level 0 reuses that module for
    levels 1 and 2 — the scheduler's affinity-aware placement makes that
    the common case — exactly like the serial loop's one-compile-per-
    benchmark sharing.  Only derivations that are pure functions of the
    key belong here; the cache is never invalidated, only cleared with
    :func:`clear_worker_cache`.
    """
    try:
        return _worker_cache[key]  # type: ignore[return-value]
    except KeyError:
        value = factory()
        _worker_cache[key] = value
        return value


def clear_worker_cache() -> None:
    """Drop every memoized derivation (tests; otherwise never needed)."""
    _worker_cache.clear()


# Epoch plumbing: every executor-level operation (a study, an exploration
# study) runs under one *epoch* — a counter the parent bumps per
# operation and ships inside each task's arguments.  A process seeing a
# new epoch drops its memo first, so within one operation every cell
# still shares compiles, while long-lived pool workers never accumulate
# derivations across operations (a pool that served the whole suite used
# to keep every benchmark's front end alive forever).

_worker_epoch: Optional[int] = None
_epoch_counter = 0


def next_epoch() -> int:
    """A fresh epoch token (parent-side, one per executor operation)."""
    global _epoch_counter
    _epoch_counter += 1
    return _epoch_counter


def sync_epoch(epoch: Optional[int]) -> None:
    """Align this process's memo with *epoch* (worker-side, per task).

    The first task of a new epoch to reach a process clears that
    process's memo; same-epoch tasks are no-ops.  Runs identically in
    pool workers and in the parent (the serial scheduler path), so
    memo growth is bounded the same way on every execution shape.
    """
    global _worker_epoch
    if epoch is not None and epoch != _worker_epoch:
        _worker_cache.clear()
        _worker_epoch = epoch


# -- the persistent pool -----------------------------------------------------------

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0


def get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared worker pool, created lazily and reused across calls.

    Repeated parallel operations with the same worker count — the common
    case: every ``run_study(jobs=N)`` / ``explore_designs(jobs=N)`` of a
    session — reuse the warm workers instead of respawning them.  A
    different count tears the pool down and builds a fresh one.
    """
    global _pool, _pool_workers
    if _pool is None or _pool_workers != workers:
        if _pool is not None:
            # Forget the old pool *before* constructing the replacement:
            # if ProcessPoolExecutor raises (bad worker count, resource
            # exhaustion), a stale (_pool, _pool_workers) pair would hand
            # the already-shut-down executor back to the next caller that
            # asks for the old count.
            _pool.shutdown()
            _pool = None
            _pool_workers = 0
        _pool = ProcessPoolExecutor(max_workers=workers)
        _pool_workers = workers
    return _pool


def shutdown_pool(wait: bool = True) -> None:
    """Tear down the persistent pool (idempotent; re-created on demand)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=wait)
        _pool = None
        _pool_workers = 0


atexit.register(shutdown_pool)


def discard_broken_pool() -> None:
    """Forget a pool whose workers died so the next call starts fresh.

    ``shutdown()`` on a broken executor only marks it; dropping the
    reference lets :func:`get_pool` build a healthy replacement.
    """
    shutdown_pool(wait=False)


def pool_status() -> Dict[str, object]:
    """The persistent pool's current shape (serve status, diagnostics)."""
    return {"alive": _pool is not None, "workers": _pool_workers}


def parallel_map(fn: Callable[[T], R], items: Iterable[T],
                 jobs: Optional[int] = None) -> List[R]:
    """Map *fn* over *items*, preserving order.

    With an effective worker count of 1 — or :data:`PARALLEL_MIN_ITEMS`
    items or fewer, where pool dispatch costs more than the work — this
    is a plain serial loop: byte-identical behavior, no pool, no
    pickling.  Otherwise items are dispatched to the persistent pool; the
    first worker exception propagates to the caller unchanged.

    A dead worker (:class:`BrokenProcessPool`) gets one rebuild-and-retry
    on a fresh pool before the error propagates: the map's items are
    independent and held by the parent, so a re-dispatch after a
    transient worker death (OOM kill, stray signal) is always safe.  A
    second failure raises — a worker that dies twice is not transient.
    """
    items = list(items)
    workers = resolve_jobs(jobs)
    if workers <= 1 or len(items) <= PARALLEL_MIN_ITEMS:
        return [fn(item) for item in items]
    # The pool is sized by the requested worker count, not by this map's
    # length: a stable size is what lets consecutive operations (a small
    # exploration fan-out, then a full study matrix) share warm workers.
    try:
        return list(get_pool(workers).map(fn, items))
    except BrokenProcessPool:
        discard_broken_pool()
    try:
        return list(get_pool(workers).map(fn, items))
    except BrokenProcessPool:
        discard_broken_pool()
        raise
