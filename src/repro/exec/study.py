"""The parallel study executor: the benchmark×level matrix on a pool.

``run_study(jobs=N)`` lands here for ``N > 1``.  The matrix is expressed
as one :class:`~repro.exec.scheduler.Task` per (benchmark, level) cell:

* every benchmark's **level-0** cell is independent and eligible
  immediately;
* with verification on, levels 1/2 of a benchmark depend on its level-0
  cell — the scheduler hands them level 0's per-seed machine results as
  the semantic-oracle reference the moment that cell completes, so other
  benchmarks' cells keep the pool busy in the meantime.

Two executor-level optimizations ride on top, both invisible in the
results:

* **level-shared front-end compiles** — every cell resolves its
  benchmark's front-end module through the per-worker memo
  (:func:`repro.exec.pool.worker_cached`), and cells of one benchmark
  carry that benchmark as their scheduler *affinity*, so the worker that
  compiled ``edge`` for level 0 typically runs its levels 1/2 too and
  pays the front end once — the same one-compile-per-benchmark sharing
  the serial loop has always had;
* **multi-seed sharding** — a cell whose ``seeds=`` batch is large
  enough (:data:`SEED_SHARD_MIN`) is split into contiguous seed shards
  executed as independent tasks, each verified against the matching
  shard of the level-0 oracle, and reassembled in seed order — so a
  many-seed study scales past one core per cell.

Workers re-derive everything from the benchmark *name* (the registry is
process-global), run the exact same :func:`~repro.suite.runner.
run_benchmark` the serial path runs, and ship the finished
:class:`~repro.suite.runner.BenchmarkRun` back.  The parent reassembles
results in registry order and seed order, never completion order, which
— together with the per-cell determinism of compiler and simulator — is
what makes ``jobs=N`` bit-identical to ``jobs=1`` (the differential
harness in ``tests/test_exec_equivalence.py`` pins this).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.ir.module import Module
from repro.opt.pipeline import OptLevel, optimize_module
from repro.exec.pool import next_epoch, sync_epoch, worker_cached
from repro.exec.scheduler import Task, run_tasks
from repro.sim.machine import MachineResult, run_module_batch_auto
from repro.suite.registry import get_benchmark
from repro.suite.runner import (BenchmarkRun, compile_benchmark,
                                run_benchmark, verify_semantics)

#: Multi-seed cells with at least this many seeds are split into
#: per-worker shards; smaller batches stay whole (the per-shard
#: compile+optimize repeat would cost more than the parallelism buys).
SEED_SHARD_MIN = 4


def _frontend_module(name: str) -> Module:
    """The benchmark's front-end compile, memoized per process.

    The front end is a pure function of the benchmark source, so every
    cell of one benchmark — across levels, shards and studies — shares
    one compile per worker process, mirroring the serial loop's
    one-compile-per-benchmark structure.
    """
    return worker_cached(("frontend", name),
                         lambda: compile_benchmark(get_benchmark(name)))


def _optimized_cell(name: str, level: int, unroll_factor: int):
    """The cell's optimized ``(graph_module, report)``, memoized per
    process.

    Every task of one (benchmark, level) cell that lands on this worker
    — the primary run and every seed shard — shares one optimize pass,
    and the graph module it yields carries the engine's compiled-form
    cache, so later tasks skip compilation/lowering/generation too.
    """
    return worker_cached(
        ("optimized", name, level, unroll_factor),
        lambda: optimize_module(_frontend_module(name), OptLevel(level),
                                unroll_factor=unroll_factor))


def _run_cell(name: str, level: int, lengths: Tuple[int, ...], seed: int,
              seeds: Optional[Tuple[int, ...]], unroll_factor: int,
              engine: str, epoch: Optional[int] = None,
              reference: Optional[Sequence] = None) -> BenchmarkRun:
    """One (benchmark, level) cell; module-level so workers can import it."""
    sync_epoch(epoch)
    return run_benchmark(
        get_benchmark(name), OptLevel(level),
        lengths=lengths, seed=seed, seeds=seeds,
        unroll_factor=unroll_factor, check_against=reference,
        module=_frontend_module(name), engine=engine,
        optimized=_optimized_cell(name, level, unroll_factor))


def _run_seed_shard(name: str, level: int, seeds: Tuple[int, ...],
                    unroll_factor: int, engine: str,
                    epoch: Optional[int] = None,
                    reference: Optional[Sequence] = None
                    ) -> Tuple[MachineResult, ...]:
    """One seed shard of a cell: simulate (and verify) *seeds* only.

    Detection and reporting consume the cell's primary seed, which lives
    in the primary task's full :func:`run_benchmark`; a shard needs just
    the optimized graph and the per-seed machine results, verified
    against the level-0 results for the same seeds.
    """
    sync_epoch(epoch)
    spec = get_benchmark(name)
    graph_module, _report = _optimized_cell(name, level, unroll_factor)
    results = run_module_batch_auto(
        graph_module, [spec.generate_inputs(s) for s in seeds],
        engine=engine)
    if reference is not None:
        for res, ref in zip(results, reference):
            verify_semantics(spec, OptLevel(level), res, ref)
    return tuple(results)


def _oracle_of(run: BenchmarkRun):
    """The reference the serial path would pass to levels 1/2."""
    if len(run.seeds) > 1:
        return run.seed_results
    return run.machine_result


def shard_seeds(seeds: Optional[Tuple[int, ...]],
                jobs: int) -> List[Optional[Tuple[int, ...]]]:
    """Contiguous seed shards for one cell; ``[seeds]`` when unsharded.

    The first shard is the *primary* (it carries the cell's primary seed
    and feeds detection).  Sharding is deterministic in ``(seeds, jobs)``
    and never reorders seeds, so the reassembled results are
    bit-identical to the unsharded batch.
    """
    if seeds is None or jobs <= 1 or len(seeds) < SEED_SHARD_MIN:
        return [seeds]
    count = min(jobs, len(seeds))
    base, rem = divmod(len(seeds), count)
    shards: List[Optional[Tuple[int, ...]]] = []
    at = 0
    for i in range(count):
        size = base + (1 if i < rem else 0)
        shards.append(tuple(seeds[at:at + size]))
        at += size
    return shards


def build_schedule(config, names: Sequence[str], jobs: int = 1,
                   epoch: Optional[int] = None) -> List[Task]:
    """The task DAG for one study (importable for tests and benchmarks).

    Duplicate names/levels are collapsed: the serial loop re-runs such
    cells and keeps only the last (dict overwrite), and every cell is
    deterministic, so running each distinct cell once yields the
    identical result without duplicate task keys.  ``jobs`` only informs
    seed sharding — the returned schedule is valid on any worker count.
    ``epoch`` (see :func:`repro.exec.pool.sync_epoch`) bounds the
    per-worker memo to this study's derivations.
    """
    names = list(dict.fromkeys(names))
    levels = sorted(set(config.levels))
    shards = shard_seeds(config.seeds, jobs)
    oracle_level = levels[0] if config.verify and levels \
        and levels[0] == 0 else None
    tasks: List[Task] = []
    for name in names:
        for level in levels:
            deps: Tuple[Hashable, ...] = ()
            bind = None
            if oracle_level is not None and level != oracle_level:
                deps = ((name, oracle_level),)

                def bind(args, results, _dep=deps[0]):
                    return args + (_oracle_of(results[_dep]),)
            tasks.append(Task(
                key=(name, level), fn=_run_cell,
                args=(name, level, config.lengths, config.seed,
                      shards[0], config.unroll_factor, config.engine,
                      epoch),
                deps=deps, bind=bind, affinity=name))
            for j, shard in enumerate(shards[1:], start=1):
                sdeps: Tuple[Hashable, ...] = ()
                sbind = None
                if oracle_level is not None and level != oracle_level:
                    sdeps = ((name, oracle_level, j),)

                    def sbind(args, results, _dep=sdeps[0]):
                        return args + (results[_dep],)
                tasks.append(Task(
                    key=(name, level, j), fn=_run_seed_shard,
                    args=(name, level, shard, config.unroll_factor,
                          config.engine, epoch),
                    deps=sdeps, bind=sbind, affinity=name))
    return tasks


def _merge_shards(run: BenchmarkRun, config,
                  shards: List[Optional[Tuple[int, ...]]],
                  cells: Dict, name: str, level: int) -> BenchmarkRun:
    """Reassemble a sharded cell into the BenchmarkRun the serial path
    produces: full seed tuple, per-seed results in seed order; primary
    result, detection and reports come from the primary shard unchanged."""
    if len(shards) <= 1:
        return run
    seed_results = list(run.seed_results)
    for j in range(1, len(shards)):
        seed_results.extend(cells[(name, level, j)])
    return replace(run, seeds=tuple(config.seeds),
                   seed_results=tuple(seed_results))


def execute_study(config, jobs: int, progress=None, stats=None):
    """Run the matrix on *jobs* workers; see :func:`repro.feedback.study.
    run_study` for the public entry point.  ``stats`` (a
    :class:`~repro.exec.scheduler.ScheduleStats`) collects scheduler
    accounting — the serve daemon's status endpoint reads it."""
    from repro.feedback.study import BenchmarkStudy, StudyResult
    from repro.suite.registry import all_benchmarks

    names = (list(dict.fromkeys(config.benchmarks))
             if config.benchmarks is not None
             else [spec.name for spec in all_benchmarks()])
    for name in names:  # fail on unknown names before any worker spawns
        get_benchmark(name)
    on_start = None
    if progress is not None:
        def on_start(key):
            if len(key) == 2:  # shard tasks are internal to their cell
                progress(key[0], key[1])
    shards = shard_seeds(config.seeds, jobs)
    # One epoch per study: cells of this study share per-worker compiles,
    # workers kept warm from *earlier* studies drop theirs first.
    cells: Dict = run_tasks(
        build_schedule(config, names, jobs=jobs, epoch=next_epoch()),
        jobs=jobs, on_start=on_start, stats=stats)

    result = StudyResult(config=config)
    for name in names:
        study = BenchmarkStudy(spec=get_benchmark(name))
        for level in sorted(set(config.levels)):
            study.runs[OptLevel(level)] = _merge_shards(
                cells[(name, level)], config, shards, cells, name, level)
        result.benchmarks[name] = study
    return result
