"""The parallel study executor: the benchmark×level matrix on a pool.

``run_study(jobs=N)`` lands here for ``N > 1``.  The matrix is expressed
as one :class:`~repro.exec.scheduler.Task` per (benchmark, level) cell:

* every benchmark's **level-0** cell is independent and eligible
  immediately;
* with verification on, levels 1/2 of a benchmark depend on its level-0
  cell — the scheduler hands them level 0's per-seed machine results as
  the semantic-oracle reference the moment that cell completes, so other
  benchmarks' cells keep the pool busy in the meantime.

Workers re-derive everything from the benchmark *name* (the registry is
process-global), run the exact same :func:`~repro.suite.runner.
run_benchmark` the serial path runs, and ship the finished
:class:`~repro.suite.runner.BenchmarkRun` back.  The parent reassembles
results in registry order, never completion order, which — together with
the per-cell determinism of compiler and simulator — is what makes
``jobs=N`` bit-identical to ``jobs=1`` (the differential harness in
``tests/test_exec_equivalence.py`` pins this).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.opt.pipeline import OptLevel
from repro.exec.scheduler import Task, run_tasks
from repro.suite.registry import get_benchmark
from repro.suite.runner import BenchmarkRun, run_benchmark


def _run_cell(name: str, level: int, lengths: Tuple[int, ...], seed: int,
              seeds: Optional[Tuple[int, ...]], unroll_factor: int,
              engine: str,
              reference: Optional[Sequence] = None) -> BenchmarkRun:
    """One (benchmark, level) cell; module-level so workers can import it."""
    return run_benchmark(
        get_benchmark(name), OptLevel(level),
        lengths=lengths, seed=seed, seeds=seeds,
        unroll_factor=unroll_factor, check_against=reference,
        engine=engine)


def _oracle_of(run: BenchmarkRun):
    """The reference the serial path would pass to levels 1/2."""
    if len(run.seeds) > 1:
        return run.seed_results
    return run.machine_result


def build_schedule(config, names: Sequence[str]) -> List[Task]:
    """The task DAG for one study (importable for tests and benchmarks).

    Duplicate names/levels are collapsed: the serial loop re-runs such
    cells and keeps only the last (dict overwrite), and every cell is
    deterministic, so running each distinct cell once yields the
    identical result without duplicate task keys.
    """
    names = list(dict.fromkeys(names))
    levels = sorted(set(config.levels))
    base_args = (config.lengths, config.seed, config.seeds,
                 config.unroll_factor, config.engine)
    oracle_level = levels[0] if config.verify and levels \
        and levels[0] == 0 else None
    tasks: List[Task] = []
    for name in names:
        for level in levels:
            deps: Tuple[Hashable, ...] = ()
            bind = None
            if oracle_level is not None and level != oracle_level:
                deps = ((name, oracle_level),)

                def bind(args, results, _dep=deps[0]):
                    return args + (_oracle_of(results[_dep]),)
            tasks.append(Task(key=(name, level), fn=_run_cell,
                              args=(name, level) + base_args,
                              deps=deps, bind=bind))
    return tasks


def execute_study(config, jobs: int, progress=None):
    """Run the matrix on *jobs* workers; see :func:`repro.feedback.study.
    run_study` for the public entry point."""
    from repro.feedback.study import BenchmarkStudy, StudyResult
    from repro.suite.registry import all_benchmarks

    names = (list(dict.fromkeys(config.benchmarks))
             if config.benchmarks is not None
             else [spec.name for spec in all_benchmarks()])
    for name in names:  # fail on unknown names before any worker spawns
        get_benchmark(name)
    on_start = None
    if progress is not None:
        def on_start(key):
            progress(key[0], key[1])
    cells: Dict = run_tasks(build_schedule(config, names), jobs=jobs,
                            on_start=on_start)

    result = StudyResult(config=config)
    for name in names:
        study = BenchmarkStudy(spec=get_benchmark(name))
        for level in sorted(set(config.levels)):
            study.runs[OptLevel(level)] = cells[(name, level)]
        result.benchmarks[name] = study
    return result
