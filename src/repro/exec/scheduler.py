"""Dependency-aware task scheduling over a process pool.

The study matrix is not embarrassingly parallel: levels 1 and 2 of a
benchmark are verified against level 0's outputs (the semantic oracle),
so each benchmark's level-0 task must complete before its other levels
fan out, while different benchmarks are fully independent.  This module
provides the small generic scheduler that encodes exactly that shape:

* a :class:`Task` names a module-level function, its arguments, the keys
  of the tasks it depends on, and an optional ``bind`` hook that runs *in
  the parent* once the dependencies finish, turning their results into
  additional arguments (how a level-1 task receives the level-0 oracle);
* :func:`run_tasks` executes a task set either serially (``jobs=1`` —
  deterministic first-ready order, no pool, no pickling) or on the
  persistent worker pool (:func:`repro.exec.pool.get_pool` — spawned
  once, reused across studies), submitting each task the moment its
  dependencies are satisfied.

Results are returned keyed by task, so callers reassemble outputs in
their own canonical order — completion order never leaks into results,
which is what keeps ``jobs=N`` bit-identical to ``jobs=1``.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional, Sequence, Tuple

from repro.analysis.taskgraph import check_task_graph
from repro.errors import ReproError
from repro.exec.pool import discard_broken_pool, get_pool, resolve_jobs


@dataclass(frozen=True)
class Task:
    """One schedulable unit of work.

    ``fn(*args)`` runs in a worker process when ``jobs > 1``, so ``fn``
    must be a module-level callable and ``args`` picklable.  ``bind``
    (optional) runs in the parent right before submission and may extend
    the arguments with dependency results: ``bind(args, results)`` where
    ``results`` maps every dependency key to its finished result.

    ``affinity`` (optional) groups tasks that profit from running in the
    same worker process (shared per-worker caches, e.g. one front-end
    compile per benchmark).  It is a *placement hint*, never a
    correctness requirement: when a task completes, the scheduler
    prefers submitting a ready task with the same affinity next — the
    worker that just freed is the one most likely to pick it up — but
    any worker may run any task.
    """

    key: Hashable
    fn: Callable
    args: Tuple = ()
    deps: Tuple[Hashable, ...] = ()
    bind: Optional[Callable[[Tuple, Dict[Hashable, object]], Tuple]] = None
    affinity: Optional[Hashable] = None

    def final_args(self, results: Dict[Hashable, object]) -> Tuple:
        if self.bind is None:
            return self.args
        return self.bind(
            self.args, {dep: results[dep] for dep in self.deps})


@dataclass
class ScheduleStats:
    """Execution accounting for one :func:`run_tasks` call."""

    executed: int = 0
    max_in_flight: int = 0
    order: list = field(default_factory=list)  # submission order of keys


def _validate(tasks: Sequence[Task]) -> None:
    # Full up-front structural validation — duplicate keys, dangling
    # deps, and dependency cycles reported with the named cycle — so a
    # bad schedule fails before any task runs (see analysis.taskgraph).
    check_task_graph(tasks)


def run_tasks(tasks: Sequence[Task], jobs: Optional[int] = None,
              on_start: Optional[Callable[[Hashable], None]] = None,
              stats: Optional[ScheduleStats] = None
              ) -> Dict[Hashable, object]:
    """Execute *tasks* respecting dependencies; return results by key.

    ``on_start(key)`` fires in the parent when a task is picked for
    execution (serial) or submitted to the pool (parallel).  A task
    exception propagates to the caller; outstanding parallel work is
    cancelled or drained first.  A dependency cycle raises
    :class:`~repro.errors.ReproError`.
    """
    _validate(tasks)
    jobs = resolve_jobs(jobs)
    if stats is None:
        stats = ScheduleStats()
    results: Dict[Hashable, object] = {}

    if jobs <= 1 or len(tasks) <= 1:
        pending = list(tasks)
        while pending:
            ready_at = next(
                (i for i, task in enumerate(pending)
                 if all(dep in results for dep in task.deps)), None)
            if ready_at is None:
                raise ReproError("dependency cycle in schedule")
            task = pending.pop(ready_at)
            if on_start is not None:
                on_start(task.key)
            stats.order.append(task.key)
            stats.executed += 1
            stats.max_in_flight = max(stats.max_in_flight, 1)
            results[task.key] = task.fn(*task.final_args(results))
        return results

    by_key = {task.key: task for task in tasks}
    waiting = list(tasks)
    in_flight: Dict = {}  # future -> key
    #: affinity of the most recently completed task — the freed worker
    #: is the likeliest to pick up the next submission, so a ready task
    #: with the same affinity goes first (see :class:`Task`).
    preferred: Optional[Hashable] = None
    # The persistent pool outlives this call: repeated studies reuse the
    # same warm workers instead of paying spin-up per run_tasks call.
    # The in-flight cap below bounds parallelism to *jobs* regardless of
    # the pool's size.
    pool = get_pool(jobs)
    try:
        while waiting or in_flight:
            submitted = True
            while submitted and len(in_flight) < jobs:
                submitted = False
                chosen = None
                for i, task in enumerate(waiting):
                    if all(dep in results for dep in task.deps):
                        if chosen is None:
                            chosen = i
                        if preferred is not None \
                                and task.affinity == preferred:
                            chosen = i
                            break
                if chosen is not None:
                    task = waiting.pop(chosen)
                    if on_start is not None:
                        on_start(task.key)
                    stats.order.append(task.key)
                    stats.executed += 1
                    future = pool.submit(
                        task.fn, *task.final_args(results))
                    in_flight[future] = task.key
                    submitted = True
            stats.max_in_flight = max(stats.max_in_flight,
                                      len(in_flight))
            if not in_flight:
                raise ReproError("dependency cycle in schedule")
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in done:
                key = in_flight.pop(future)
                results[key] = future.result()  # re-raises task errors
                completed = by_key[key]
                if completed.affinity is not None:
                    preferred = completed.affinity
    except BrokenProcessPool:
        for future in in_flight:
            future.cancel()
        discard_broken_pool()
        raise
    except BaseException:
        for future in in_flight:
            future.cancel()
        # Drain still-running siblings before re-raising: the pool
        # outlives this call, and a caller that catches the error must
        # find quiet workers, not orphan tasks still mutating state
        # (the old per-call executor's `with` exit waited the same way).
        wait(in_flight)
        raise
    # Not every key resolvable means leftover waiting tasks formed a cycle;
    # the in-flight check above already caught that, so here all are done.
    assert len(results) == len(by_key)
    return results
