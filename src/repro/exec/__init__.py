"""Study execution subsystem: pools, scheduling, parallel studies.

The experimental matrix (every benchmark × optimization level, multiple
input seeds) is pure CPU-bound simulation, so scaling it means process
parallelism plus batching:

* :mod:`repro.exec.pool` — ``jobs=`` knob resolution (``None`` defers to
  ``$REPRO_JOBS``, ``0`` means all cores) and an order-preserving
  ``parallel_map``;
* :mod:`repro.exec.scheduler` — a dependency-aware task scheduler (the
  level-0 semantic oracle gates levels 1/2 of each benchmark);
* :mod:`repro.exec.study` — the parallel ``run_study`` executor built on
  both.

Everything here preserves the serial-equivalence guarantee: ``jobs=N``
produces results bit-identical to ``jobs=1`` — profiles included —
because workers run the same per-cell code and the parent reassembles
results in canonical order, never completion order.
"""

from repro.exec.pool import (JOBS_ENV_VAR, available_cpus, parallel_map,
                             resolve_jobs)
from repro.exec.scheduler import ScheduleStats, Task, run_tasks

__all__ = [
    "JOBS_ENV_VAR",
    "available_cpus",
    "parallel_map",
    "resolve_jobs",
    "ScheduleStats",
    "Task",
    "run_tasks",
]
