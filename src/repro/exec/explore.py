"""The suite-wide exploration executor: benchmark × budget on the pool.

:func:`repro.feedback.study.run_exploration_study` lands here.  The
paper's exploration loop (:func:`repro.asip.explore.explore_designs`)
is estimate-then-measure for *one* benchmark and *one* area budget;
this module schedules the whole matrix as dependency tasks on the same
persistent pool the study executor uses:

* one **base task** per benchmark — optimize at the study level, run
  *one* simulation batch over every seed (lane-parallel past the shard
  threshold), detect sequences on the primary seed's profile, build the
  budget-agnostic candidate pool, and re-sequentialize.  The unchained
  single-issue base results are *derived* from that batch rather than
  simulated again: re-sequentialization preserves semantics (outputs
  are shared — and still independently guarded by the fused-vs-base
  check inside every evaluation), and the chain expansion recorded by
  :func:`~repro.asip.resequence.resequence_module_mapped` determines
  the sequential node counts, hence the exact single-issue cycle
  count, from the VLIW profile.  This is the part every budget of a
  benchmark shares, so it runs exactly once — and it is one simulation
  per seed, not two (nor the former batch-plus-primary-profile run);
* one **measurement task** per (benchmark, budget) cell — gated on the
  benchmark's base task, whose result arrives as a bound argument the
  moment it completes.  The cell re-derives its finalist subsets with
  the same pure helpers the per-benchmark loop uses
  (:func:`~repro.asip.explore.rank_candidates` /
  :func:`~repro.asip.explore.select_finalists`) and measures each
  finalist ISA against the shipped base-processor results;
* multi-seed configurations **shard by seed** exactly like study cells
  (:func:`repro.exec.study.shard_seeds`): each shard measures every
  finalist on its contiguous seed slice against the matching slice of
  the base results, and the parent reassembles per-seed evaluations in
  seed order before folding them
  (:func:`~repro.asip.evaluate.merge_evaluations`).

Tasks carry the benchmark as their scheduler *affinity* and resolve
the front-end/optimize/re-sequentialize derivations through the
per-worker memo (:func:`repro.exec.pool.worker_cached`, bounded per
operation by the epoch protocol), so a benchmark's base and its budget
cells typically share one compile per worker.  Results are reassembled
in canonical (benchmark, budget) order, never completion order — which
is what makes ``jobs=N`` bit-identical to ``jobs=1`` and both identical
to running ``explore_designs`` per benchmark, pinned by
``tests/test_explore_study.py``.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional, Sequence, Tuple

from repro.asip.cost import DEFAULT_COST_MODEL
from repro.asip.evaluate import (AsipEvaluation, evaluate_on_sequential,
                                 evaluate_on_sequential_batch,
                                 merge_evaluations)
from repro.asip.explore import (DesignPoint, ExplorationResult, _isa_for,
                                candidate_pool, frontier_sweep,
                                rank_candidates, select_finalists)
from repro.asip.resequence import resequence_module_mapped
from repro.chaining.detect import detect_sequences
from repro.errors import SimulationError
from repro.exec.pool import next_epoch, sync_epoch, worker_cached
from repro.exec.scheduler import Task, run_tasks
from repro.exec.study import _optimized_cell, shard_seeds
from repro.opt.pipeline import OptLevel
from repro.sim.machine import MachineResult, run_module_batch_auto
from repro.sim.profile import ProfileData
from repro.suite.registry import get_benchmark

def _sequential_module(name: str, level: int, unroll_factor: int):
    """The benchmark's re-sequentialized optimized module plus its node
    expansion map, memoized per process (the base-processor program
    every finalist is measured against; shares the study executor's
    per-worker optimize memo)."""
    def build():
        graph_module, _report = _optimized_cell(name, level, unroll_factor)
        return resequence_module_mapped(graph_module)
    return worker_cached(("sequential", name, level, unroll_factor), build)


def _derived_base_result(graph_result: MachineResult, mapping,
                         entry_name: str,
                         max_cycles: int = 200_000_000) -> MachineResult:
    """One seed's single-issue base result, derived from its VLIW run.

    Outputs and return value carry over unchanged (re-sequentialization
    preserves semantics; every evaluation's fused-vs-base check still
    guards this independently).  Node counts expand through the chain
    map — each sequential node executes exactly as often as the
    original node it was split from — giving the exact cycle count the
    sequential simulation would have measured.  Edge counts are left
    empty: nothing downstream of the base result reads them.
    """
    profile = ProfileData()
    for fn, counts in graph_result.profile.node_counts.items():
        chain_map = mapping.get(fn)
        if not chain_map:
            continue
        seq_counts: dict = {}
        for nid, count in counts.items():
            for snid in chain_map.get(nid, ()):
                seq_counts[snid] = count
        if seq_counts:
            profile.node_counts[fn] = seq_counts
    profile.call_counts = dict(graph_result.profile.call_counts)
    if profile.total_cycles() > max_cycles:
        raise SimulationError(
            f"cycle limit ({max_cycles}) exceeded; "
            f"infinite loop in {entry_name!r}?")
    return MachineResult(graph_result.return_value,
                         graph_result.globals_after, profile)


def _explore_base(name: str, level: int, lengths: Tuple[int, ...],
                  seed: int, seeds: Optional[Tuple[int, ...]],
                  unroll_factor: int, engine: str,
                  epoch: Optional[int] = None):
    """Per-benchmark budget-independent stage (module-level: runs in
    pool workers).

    Returns ``(candidate pool, per-seed base-processor results, total
    dynamic ops)`` — everything a budget cell cannot cheaply re-derive,
    plus the benchmark's share of suite execution the cross-benchmark
    aggregation weights by.  Profiling and sequence detection use the
    primary seed, exactly like the study matrix and the per-benchmark
    loop; all seeds ride one batch of the optimized graph
    (lane-parallel past the shard threshold) and the sequential base
    results are derived from it, one simulation per seed total.
    """
    sync_epoch(epoch)
    spec = get_benchmark(name)
    graph_module, _report = _optimized_cell(name, level, unroll_factor)
    seed_list = seeds if seeds else (seed,)
    graph_results = run_module_batch_auto(
        graph_module, [spec.generate_inputs(s) for s in seed_list],
        engine=engine)
    detection = detect_sequences(graph_module, graph_results[0].profile,
                                 lengths)
    pool = candidate_pool(detection, DEFAULT_COST_MODEL)
    _sequential, mapping = _sequential_module(name, level, unroll_factor)
    base_results = tuple(
        _derived_base_result(result, mapping, graph_module.entry.name)
        for result in graph_results)
    return pool, base_results, detection.total_ops


def _measure_pattern_sets(name: str, level: int,
                          shard: Optional[Tuple[int, ...]], seed: int,
                          unroll_factor: int, engine: str,
                          pattern_sets: Sequence[Tuple], base_results
                          ) -> Tuple:
    """Measure each chain set of *pattern_sets* on one seed slice.

    The shared measurement kernel of both executor shapes: a budget
    cell measures its finalist subsets, a frontier chunk measures its
    slice of the deduplicated breakpoint chain sets — same inputs, same
    base results, same ``(isa, per-seed evaluations)`` tuples out, in
    the order given.
    """
    sequential, _mapping = _sequential_module(name, level, unroll_factor)
    spec = get_benchmark(name)
    cost = DEFAULT_COST_MODEL
    # Input sets are chain-set-invariant: generate them once per task,
    # not once per finalist (the serial loop shares one inputs dict too).
    if shard is None:
        inputs = spec.generate_inputs(seed)
    else:
        inputs_list = [spec.generate_inputs(s) for s in shard]
    measured = []
    for patterns in pattern_sets:
        isa = _isa_for(patterns, cost)
        if shard is None:
            evals: Tuple[AsipEvaluation, ...] = (evaluate_on_sequential(
                sequential, isa, inputs, cost,
                base_result=base_results[0], engine=engine),)
        else:
            evals = evaluate_on_sequential_batch(
                sequential, isa, inputs_list, cost,
                base_results=base_results, engine=engine)
        measured.append((isa, evals))
    return tuple(measured)


def _measure_cell(name: str, level: int, budget: int,
                  shard: Optional[Tuple[int, ...]], seed: int,
                  unroll_factor: int, engine: str, max_candidates: int,
                  measure_top: int, epoch: Optional[int] = None,
                  base=None) -> Tuple:
    """Measure every finalist of one (benchmark, budget) cell on this
    task's seed slice (module-level: runs in pool workers).

    ``base`` is bound by the scheduler: the benchmark's candidate pool
    plus the base-processor results for exactly this shard's seeds.
    Returns one ``(isa, per-seed evaluations)`` pair per finalist, in
    the canonical finalist order.
    """
    sync_epoch(epoch)
    pool, base_results = base
    candidates = rank_candidates(pool, budget, max_candidates)
    if not candidates:
        return ()
    combos = select_finalists(candidates, budget, measure_top)
    pattern_sets = [tuple(candidates[i].pattern for i in combo)
                    for combo in combos]
    return _measure_pattern_sets(name, level, shard, seed, unroll_factor,
                                 engine, pattern_sets, base_results)


def _shard_bounds(shards: List[Optional[Tuple[int, ...]]]
                  ) -> List[Tuple[int, Optional[int]]]:
    """Per-shard ``(lo, hi)`` slice of the base-results tuple."""
    if shards == [None]:
        return [(0, None)]  # single seed or unsharded batch: everything
    bounds: List[Tuple[int, Optional[int]]] = []
    at = 0
    for shard in shards:
        bounds.append((at, at + len(shard)))
        at += len(shard)
    return bounds


def build_exploration_schedule(config, names: Sequence[str], jobs: int = 1,
                               epoch: Optional[int] = None) -> List[Task]:
    """The task DAG for one exploration study (importable for tests).

    Every benchmark contributes one base task plus one measurement task
    per (budget, seed shard); measurement tasks depend on their
    benchmark's base.  ``jobs`` only informs seed sharding — the
    schedule is valid on any worker count.
    """
    names = list(dict.fromkeys(names))
    budgets = list(dict.fromkeys(config.budgets))
    shards = shard_seeds(config.seeds, jobs)
    bounds = _shard_bounds(shards)
    level = int(OptLevel(config.level))
    tasks: List[Task] = []
    for name in names:
        base_key: Hashable = ("base", name)
        tasks.append(Task(
            key=base_key, fn=_explore_base,
            args=(name, level, config.lengths, config.seed, config.seeds,
                  config.unroll_factor, config.engine, epoch),
            affinity=name))
        for budget in budgets:
            for j, shard in enumerate(shards):
                def bind(args, results, _dep=base_key, _b=bounds[j]):
                    pool, base_results, _total_ops = results[_dep]
                    lo, hi = _b
                    sliced = base_results[lo:] if hi is None \
                        else base_results[lo:hi]
                    return args + ((pool, sliced),)
                tasks.append(Task(
                    key=("fin", name, budget, j), fn=_measure_cell,
                    args=(name, level, budget, shard, config.seed,
                          config.unroll_factor, config.engine,
                          config.max_candidates, config.measure_top,
                          epoch),
                    deps=(base_key,), bind=bind, affinity=name))
    return tasks


def execute_exploration_study(config, jobs: int,
                              progress: Optional[
                                  Callable[[str, str], None]] = None,
                              stats=None):
    """Run the benchmark × budget matrix on *jobs* workers; see
    :func:`repro.feedback.study.run_exploration_study` for the public
    entry point (and :data:`repro.feedback.study.ExploreProgressFn` for
    the progress-callback contract).  ``stats`` collects scheduler
    accounting (see :func:`repro.exec.study.execute_study`)."""
    from repro.feedback.study import ExplorationStudyResult
    from repro.suite.registry import all_benchmarks

    names = (list(dict.fromkeys(config.benchmarks))
             if config.benchmarks is not None
             else [spec.name for spec in all_benchmarks()])
    for name in names:  # fail on unknown names before any worker spawns
        get_benchmark(name)
    budgets = list(dict.fromkeys(config.budgets))

    on_start = None
    if progress is not None:
        def on_start(key):
            if key[0] == "base":
                progress(key[1], "base")
            elif key[3] == 0:  # extra shards are internal to their cell
                progress(key[1], f"budget {key[2]}")

    shards = shard_seeds(config.seeds, jobs)
    cells = run_tasks(
        build_exploration_schedule(config, names, jobs=jobs,
                                   epoch=next_epoch()),
        jobs=jobs, on_start=on_start, stats=stats)

    result = ExplorationStudyResult(config=config)
    for name in names:
        pool, _base_results, _total_ops = cells[("base", name)]
        for budget in budgets:
            candidates = rank_candidates(pool, budget,
                                         config.max_candidates)
            exploration = ExplorationResult(candidates=candidates)
            if candidates:
                shard_cells = [cells[("fin", name, budget, j)]
                               for j in range(len(shards))]
                for i, (isa, first_evals) in enumerate(shard_cells[0]):
                    evals = list(first_evals)
                    for cell in shard_cells[1:]:
                        evals.extend(cell[i][1])
                    evaluation = merge_evaluations(tuple(evals)) \
                        if config.seeds else evals[0]
                    exploration.measured.append(
                        DesignPoint(isa=isa, evaluation=evaluation))
            result.explorations[(name, budget)] = exploration
    return result


# -- the frontier sweep as an executor stage ---------------------------------------
#
# :func:`repro.feedback.study.run_frontier_study` lands here.  Instead
# of one measurement task per (budget, shard) cell, each benchmark gets
# one *frontier task* — gated on the same base task — that walks the
# candidate pool once (:func:`~repro.asip.explore.frontier_sweep`), and
# the deduplicated breakpoint chain sets fan out as measurement chunks:
# every distinct chain set on the frontier is measured exactly once per
# seed shard, however many budgets it answers.


def _frontier_stage(max_candidates: int, measure_top: int,
                    max_budget: Optional[int], epoch: Optional[int] = None,
                    base=None):
    """One benchmark's breakpoint sweep (module-level: runs in pool
    workers).  ``base`` is bound by the scheduler from the base task."""
    sync_epoch(epoch)
    pool, _base_results, _total_ops = base
    return frontier_sweep(pool, max_candidates=max_candidates,
                          measure_top=measure_top, max_budget=max_budget)


def _measure_frontier_chunk(name: str, level: int,
                            shard: Optional[Tuple[int, ...]], seed: int,
                            unroll_factor: int, engine: str,
                            epoch: Optional[int] = None,
                            work=None) -> Tuple:
    """Measure one chunk of a benchmark's frontier chain sets on this
    task's seed slice (module-level: runs in pool workers).

    ``work`` is bound by the scheduler: this chunk's slice of the
    frontier's deduplicated chain sets plus the base-processor results
    for exactly this shard's seeds.  Empty chunks (fewer chain sets
    than chunks) return ``()``.
    """
    sync_epoch(epoch)
    pattern_sets, base_results = work
    if not pattern_sets:
        return ()
    return _measure_pattern_sets(name, level, shard, seed, unroll_factor,
                                 engine, pattern_sets, base_results)


def _chunk_bounds(count: int, chunks: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` slices splitting *count* items into
    *chunks* parts (trailing chunks may be empty); deterministic in its
    arguments, like :func:`repro.exec.study.shard_seeds`."""
    base, rem = divmod(count, chunks)
    bounds = []
    at = 0
    for i in range(chunks):
        size = base + (1 if i < rem else 0)
        bounds.append((at, at + size))
        at += size
    return bounds


def build_frontier_schedule(config, names: Sequence[str], jobs: int = 1,
                            epoch: Optional[int] = None) -> List[Task]:
    """The task DAG for one frontier study (importable for tests).

    Per benchmark: the shared base task, one frontier task depending on
    it, and ``chunks × shards`` measurement tasks depending on both.
    ``jobs`` informs seed sharding and the chunk count only — the
    schedule is valid on any worker count, and reassembly in canonical
    (benchmark, chunk, shard) order keeps every ``jobs`` value
    bit-identical.
    """
    names = list(dict.fromkeys(names))
    shards = shard_seeds(config.seeds, jobs)
    bounds = _shard_bounds(shards)
    chunks = max(1, jobs)
    level = int(OptLevel(config.level))
    tasks: List[Task] = []
    for name in names:
        base_key: Hashable = ("base", name)
        frontier_key: Hashable = ("frontier", name)
        tasks.append(Task(
            key=base_key, fn=_explore_base,
            args=(name, level, config.lengths, config.seed, config.seeds,
                  config.unroll_factor, config.engine, epoch),
            affinity=name))
        tasks.append(Task(
            key=frontier_key, fn=_frontier_stage,
            args=(config.max_candidates, config.measure_top,
                  config.max_budget, epoch),
            deps=(base_key,),
            bind=lambda args, results, _dep=base_key:
                args + (results[_dep],),
            affinity=name))
        for c in range(chunks):
            for j, shard in enumerate(shards):
                def bind(args, results, _base=base_key,
                         _frontier=frontier_key, _c=c, _b=bounds[j]):
                    _pool, base_results, _total_ops = results[_base]
                    pattern_sets = results[_frontier].pattern_sets()
                    lo, hi = _chunk_bounds(len(pattern_sets), chunks)[_c]
                    slo, shi = _b
                    sliced = base_results[slo:] if shi is None \
                        else base_results[slo:shi]
                    return args + ((pattern_sets[lo:hi], sliced),)
                tasks.append(Task(
                    key=("fchunk", name, c, j), fn=_measure_frontier_chunk,
                    args=(name, level, shard, config.seed,
                          config.unroll_factor, config.engine, epoch),
                    deps=(base_key, frontier_key), bind=bind,
                    affinity=name))
    return tasks


def execute_frontier_study(config, jobs: int,
                           progress: Optional[
                               Callable[[str, str], None]] = None,
                           stats=None):
    """Run one frontier sweep + breakpoint measurements per benchmark
    on *jobs* workers; see :func:`repro.feedback.study.
    run_frontier_study` for the public entry point.  ``stats`` collects
    scheduler accounting (see :func:`repro.exec.study.execute_study`)."""
    from repro.feedback.study import BenchmarkFrontier, FrontierResult
    from repro.suite.registry import all_benchmarks

    names = (list(dict.fromkeys(config.benchmarks))
             if config.benchmarks is not None
             else [spec.name for spec in all_benchmarks()])
    for name in names:  # fail on unknown names before any worker spawns
        get_benchmark(name)

    on_start = None
    if progress is not None:
        def on_start(key):
            if key[0] == "base":
                progress(key[1], "base")
            elif key[0] == "frontier":
                progress(key[1], "frontier")
            elif key[2] == 0 and key[3] == 0:  # chunks/shards: internal
                progress(key[1], "measure")

    shards = shard_seeds(config.seeds, jobs)
    chunks = max(1, jobs)
    cells = run_tasks(
        build_frontier_schedule(config, names, jobs=jobs,
                                epoch=next_epoch()),
        jobs=jobs, on_start=on_start, stats=stats)

    result = FrontierResult(config=config)
    for name in names:
        _pool, _base_results, total_ops = cells[("base", name)]
        frontier = cells[("frontier", name)]
        pattern_sets = frontier.pattern_sets()
        # Chunks concatenate back into pattern_sets order; each chain
        # set's per-shard evaluations concatenate in seed order before
        # folding — exactly the budget-cell reassembly, per chain set.
        designs = {}
        at = 0
        for c in range(chunks):
            shard_cells = [cells[("fchunk", name, c, j)]
                           for j in range(len(shards))]
            for i, (isa, first_evals) in enumerate(shard_cells[0]):
                evals = list(first_evals)
                for cell in shard_cells[1:]:
                    evals.extend(cell[i][1])
                evaluation = merge_evaluations(tuple(evals)) \
                    if config.seeds else evals[0]
                designs[pattern_sets[at + i]] = DesignPoint(
                    isa=isa, evaluation=evaluation)
            at += len(shard_cells[0])
        result.benchmarks[name] = BenchmarkFrontier(
            name=name, frontier=frontier, designs=designs,
            total_ops=total_ops)
    return result
