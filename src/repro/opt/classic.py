"""Classic scalar cleanups over program graphs.

These are the enabling optimizations every serious compiler runs before
scheduling: constant folding, forward copy/constant propagation, move
coalescing (the reverse copy propagation that eliminates the
``t = op ...; mov var, t`` pattern the lowering stage emits), and global
dead-code elimination.  Eliminating moves matters for the paper's analysis:
a ``mov`` is not a chainable operation, so a producer feeding a consumer
*through* a move would hide the chain.

All passes operate on graphs whose nodes are still one-op wide (they run
before compaction) but are written defensively for wider nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.cfg.graph import ProgramGraph
from repro.cfg.dataflow import compute_liveness
from repro.errors import OptimizationError
from repro.ir.instr import Instruction
from repro.ir.ops import Op
from repro.ir.values import Constant, VirtualReg
from repro.sim.values import int_div, int_mod, shift_left, shift_right


def straight_chains(graph: ProgramGraph) -> List[List[int]]:
    """Maximal straight-line chains of nodes (single succ / single pred).

    A chain is a basic block of the one-op-per-node graph; local passes
    (propagation, coalescing, folding) run within chains.
    """
    in_chain: Set[int] = set()
    chains: List[List[int]] = []
    for nid in graph.rpo_order():
        if nid in in_chain:
            continue
        node = graph.nodes[nid]
        # Chain leaders: entry, join points, branch targets.
        preds = node.preds
        if nid != graph.entry and len(preds) == 1 \
                and len(graph.nodes[preds[0]].succs) == 1:
            continue  # interior of some chain
        chain = [nid]
        in_chain.add(nid)
        cur = node
        while (len(cur.succs) == 1
               and len(graph.nodes[cur.succs[0]].preds) == 1
               and cur.succs[0] not in in_chain
               and cur.succs[0] != chain[0]):
            nxt = cur.succs[0]
            chain.append(nxt)
            in_chain.add(nxt)
            cur = graph.nodes[nxt]
        chains.append(chain)
    return chains


# ---------------------------------------------------------------- folding


_FOLDABLE = {
    Op.ADD: lambda a, b: a + b,
    Op.SUB: lambda a, b: a - b,
    Op.MUL: lambda a, b: a * b,
    Op.DIV: int_div,
    Op.MOD: int_mod,
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SHL: shift_left,
    Op.SHR: shift_right,
    Op.CMPEQ: lambda a, b: int(a == b),
    Op.CMPNE: lambda a, b: int(a != b),
    Op.CMPLT: lambda a, b: int(a < b),
    Op.CMPLE: lambda a, b: int(a <= b),
    Op.CMPGT: lambda a, b: int(a > b),
    Op.CMPGE: lambda a, b: int(a >= b),
    Op.FADD: lambda a, b: a + b,
    Op.FSUB: lambda a, b: a - b,
    Op.FMUL: lambda a, b: a * b,
    Op.FCMPEQ: lambda a, b: int(a == b),
    Op.FCMPNE: lambda a, b: int(a != b),
    Op.FCMPLT: lambda a, b: int(a < b),
    Op.FCMPLE: lambda a, b: int(a <= b),
    Op.FCMPGT: lambda a, b: int(a > b),
    Op.FCMPGE: lambda a, b: int(a >= b),
}

_FOLDABLE_UNARY = {
    Op.NEG: lambda a: -a,
    Op.NOT: lambda a: ~a,
    Op.FNEG: lambda a: -a,
    Op.ITOF: float,
    Op.FTOI: int,
}


def constant_fold(graph: ProgramGraph) -> int:
    """Fold operations whose operands are all constants into moves.

    Returns the number of folded instructions.  Division by a constant zero
    is left alone (it must still trap at run time).
    """
    folded = 0
    for node in graph.nodes.values():
        for i, ins in enumerate(node.ops):
            if ins.dest is None:
                continue
            if not all(isinstance(s, Constant) for s in ins.srcs):
                continue
            values = [s.value for s in ins.srcs]
            if ins.op in _FOLDABLE and len(values) == 2:
                if ins.op in (Op.DIV, Op.MOD) and values[1] == 0:
                    continue
                result = _FOLDABLE[ins.op](*values)
            elif ins.op in _FOLDABLE_UNARY and len(values) == 1:
                result = _FOLDABLE_UNARY[ins.op](*values)
            else:
                continue
            is_float = ins.dest.is_float
            mov_op = Op.FMOV if is_float else Op.MOV
            replacement = Instruction(
                mov_op, dest=ins.dest,
                srcs=(Constant(result, is_float),),
                origin=ins.origin, loc=ins.loc)
            node.ops[i] = replacement
            folded += 1
    return folded


# ------------------------------------------------------------- propagation


def copy_propagate(graph: ProgramGraph) -> int:
    """Forward copy/constant propagation within straight-line chains.

    After ``mov d, s`` later reads of ``d`` become reads of ``s`` until
    either register is redefined.  Returns the number of rewritten operand
    slots.
    """
    rewritten = 0
    for chain in straight_chains(graph):
        env: Dict[str, object] = {}  # dest name -> Constant or VirtualReg
        for nid in chain:
            node = graph.nodes[nid]
            # Read phase: rewrite uses against the environment.
            for ins in node.all_instructions():
                new_srcs = []
                changed = False
                for s in ins.srcs:
                    if isinstance(s, VirtualReg) and s.name in env:
                        new_srcs.append(env[s.name])
                        changed = True
                        rewritten += 1
                    else:
                        new_srcs.append(s)
                if changed:
                    ins.srcs = tuple(new_srcs)
            # Write phase: update the environment.
            defined = {d.name for ins in node.ops for d in ins.defs()}
            for name in list(env):
                value = env[name]
                if name in defined or (isinstance(value, VirtualReg)
                                       and value.name in defined):
                    del env[name]
            for ins in node.ops:
                if ins.op in (Op.MOV, Op.FMOV) and ins.dest is not None:
                    src = ins.srcs[0]
                    if isinstance(src, (Constant, VirtualReg)):
                        if isinstance(src, VirtualReg) \
                                and src.name == ins.dest.name:
                            continue
                        env[ins.dest.name] = src
    return rewritten


def _global_use_counts(graph: ProgramGraph) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for node in graph.nodes.values():
        for ins in node.all_instructions():
            for r in ins.uses():
                counts[r.name] = counts.get(r.name, 0) + 1
    return counts


def _global_def_counts(graph: ProgramGraph) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for node in graph.nodes.values():
        for ins in node.ops:
            for r in ins.defs():
                counts[r.name] = counts.get(r.name, 0) + 1
    return counts


def coalesce_moves(graph: ProgramGraph) -> int:
    """Eliminate ``t = op ...; mov d, t`` patterns within chains.

    When ``t`` is a single-def register whose only use is the move, the
    defining operation retargets to ``d`` directly and the move dies,
    provided ``d`` is neither read nor written in between.  Returns the
    number of moves removed.
    """
    removed = 0
    uses = _global_use_counts(graph)
    defs = _global_def_counts(graph)
    for chain in straight_chains(graph):
        # Sequence number of the defining instruction of each register and
        # of the last touch (read or write) of each register.  A touch at
        # the def's own sequence number is the defining instruction reading
        # its sources — harmless (reads happen before writes), so the
        # interference check below uses <=.
        def_site: Dict[str, Tuple[int, Instruction]] = {}
        touched_since: Dict[str, int] = {}
        seq = 0
        for nid in chain:
            node = graph.nodes[nid]
            for ins in list(node.ops):
                seq += 1
                if ins.op in (Op.MOV, Op.FMOV) and ins.dest is not None \
                        and isinstance(ins.srcs[0], VirtualReg):
                    t = ins.srcs[0]
                    d = ins.dest
                    site = def_site.get(t.name)
                    if (site is not None
                            and uses.get(t.name, 0) == 1
                            and defs.get(t.name, 0) == 1
                            and t.name != d.name
                            and touched_since.get(d.name, -1) <= site[0]
                            and site[1].op is not Op.CALL):
                        site[1].dest = d
                        node.ops.remove(ins)
                        removed += 1
                        uses[t.name] = 0
                        del def_site[t.name]
                        def_site[d.name] = site
                        touched_since[d.name] = seq
                        continue
                for r in ins.uses():
                    touched_since[r.name] = seq
                for r in ins.defs():
                    def_site[r.name] = (seq, ins)
                    touched_since[r.name] = seq
            if node.control is not None:
                seq += 1
                for r in node.control.uses():
                    touched_since[r.name] = seq
    return removed


# ----------------------------------------------------------------- dce


def dead_code_elimination(graph: ProgramGraph) -> int:
    """Remove pure operations whose destination is dead.

    Iterates liveness to fixpoint (removing one layer of dead code can kill
    another).  Stores, calls and control are never removed.  Returns the
    total number of deleted operations.
    """
    total = 0
    while True:
        liveness = compute_liveness(graph)
        removed = 0
        for nid, node in graph.nodes.items():
            live_out = liveness.live_out[nid]
            survivors = []
            for ins in node.ops:
                if ins.dest is None or ins.has_side_effects or ins.is_call:
                    survivors.append(ins)
                elif ins.dest in live_out:
                    survivors.append(ins)
                else:
                    removed += 1
            node.ops = survivors
        total += removed
        if removed == 0:
            return total


def run_cleanups(graph: ProgramGraph, max_rounds: int = 8) -> Dict[str, int]:
    """Run fold / propagate / coalesce / DCE to a fixpoint.

    Returns pass statistics for reporting and tests.
    """
    stats = {"folded": 0, "propagated": 0, "coalesced": 0, "dce": 0}
    for _ in range(max_rounds):
        changed = 0
        changed += (n := constant_fold(graph))
        stats["folded"] += n
        changed += (n := copy_propagate(graph))
        stats["propagated"] += n
        changed += (n := coalesce_moves(graph))
        stats["coalesced"] += n
        changed += (n := dead_code_elimination(graph))
        stats["dce"] += n
        if changed == 0:
            break
    return stats
