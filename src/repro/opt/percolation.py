"""Percolation scheduling: compaction of program graphs.

Implements the core semantics-preserving transformations of Nicolau's
percolation scheduling ([9],[10] in the paper) on VLIW program graphs:

* **move_op** — hoist an operation from a node into its predecessor(s).
  When the node has several predecessors the operation is copied into every
  one of them (the paper's *unify* flavour); the move happens only if it is
  legal in all of them.
* **delete** — remove nodes that became empty, shortening the schedule.
* **register renaming** (optimization level 2) — when a hoist is blocked
  only by an output dependence or by the destination being live on another
  path, a renamed copy ``r' = op ...`` moves up and a ``mov dest, r'``
  stays behind.  This is precisely the mechanism the paper observed to
  *hurt* sequence detection: the producer percolates far from its consumer,
  "communicating only through the renamed register".

Legality rules (one VLIW node: reads at cycle start, writes at cycle end):

1. never move a ``call``; never move anything into a node containing one;
2. true dependence: a predecessor must not write any source of the moved op;
3. output dependence: a predecessor must not write the op's destination
   (renaming lifts this);
4. liveness: the destination must be dead on every other path out of each
   predecessor (renaming lifts this for pure, non-trapping ops);
5. no reader left behind: no instruction remaining in the source node may
   read the op's destination (they would suddenly see the new value);
6. speculation: trapping ops (loads, divides, intrinsics) and stores only
   move into predecessors whose sole successor is the source node;
7. memory order: stores never cross may-aliasing memory operations in
   either the target or the source node; loads never move into a node with
   a may-aliasing store;
8. motion follows forward edges only (strictly decreasing reverse-postorder
   index).  Cross-back-edge motion — software pipelining — is obtained by
   unrolling first (:mod:`repro.opt.looppipe`), which turns the interesting
   iteration seams into forward edges.  This also guarantees termination.

``move_cond`` (branch hoisting) is intentionally not implemented: chainable
sequences are data-operation chains, and in this framework branch order
contributes nothing to producer→consumer adjacency (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cfg.dataflow import compute_liveness
from repro.cfg.graph import Node, ProgramGraph
from repro.ir.instr import Instruction
from repro.ir.ops import Op
from repro.ir.values import VirtualReg
from repro.opt.alias import memory_conflict

#: Opcodes that may fault at run time and therefore must not be speculated.
TRAPPING_OPS = {Op.LOAD, Op.FLOAD, Op.DIV, Op.MOD, Op.FDIV, Op.INTRIN}

_LEGAL = "legal"
_RENAME = "rename"
_BLOCKED = "blocked"


@dataclass
class CompactionStats:
    """What one :func:`compact_graph` run did."""

    passes: int = 0
    moves: int = 0
    copies: int = 0
    renames: int = 0
    deleted_nodes: int = 0

    def merge(self, other: "CompactionStats") -> None:
        self.passes += other.passes
        self.moves += other.moves
        self.copies += other.copies
        self.renames += other.renames
        self.deleted_nodes += other.deleted_nodes


def _node_has_call(node: Node) -> bool:
    return any(ins.op is Op.CALL for ins in node.ops)


def _check_target(op: Instruction, src_node: Node, target: Node,
                  succ_live_in: Dict[int, Set[VirtualReg]],
                  max_width: Optional[int]) -> str:
    """Classify hoisting *op* from *src_node* into *target*."""
    if _node_has_call(target):
        return _BLOCKED
    if max_width is not None and len(target.ops) >= max_width:
        return _BLOCKED

    speculative = (len(set(target.succs)) != 1
                   or target.succs[0] != src_node.id)
    if speculative and (op.op in TRAPPING_OPS or op.is_store):
        return _BLOCKED

    op_uses = set(op.uses())
    verdict = _LEGAL
    for existing in target.ops:
        dest = existing.dest
        if dest is not None and dest in op_uses:
            return _BLOCKED  # true dependence
        if dest is not None and op.dest is not None and dest == op.dest:
            verdict = _RENAME  # output dependence: renaming can fix it
        if (op.is_store or op.is_load) and memory_conflict(op, existing):
            return _BLOCKED

    if op.dest is not None:
        for succ in target.succs:
            if succ == src_node.id:
                continue
            if op.dest in succ_live_in[succ]:
                verdict = _RENAME
    if verdict is _RENAME:
        # Renaming produces a speculatively executed copy, so the op must
        # be pure and non-trapping, and it needs a destination to rename.
        if (op.dest is None or op.is_store or op.has_side_effects
                or op.op in TRAPPING_OPS):
            return _BLOCKED
    return verdict


def _movable_from_source(op: Instruction, src_node: Node) -> bool:
    """Check source-node conditions (reader-left-behind, memory order)."""
    if op.op is Op.CALL:
        return False
    remaining = [ins for ins in src_node.ops if ins is not op]
    if op.dest is not None:
        for other in remaining:
            if op.dest in other.uses():
                return False
        control = src_node.control
        if control is not None and op.dest in control.uses():
            return False
    if op.is_store:
        for other in remaining:
            if memory_conflict(op, other):
                return False
    return True


def compact_graph(graph: ProgramGraph, rename: bool = False,
                  max_width: Optional[int] = None,
                  max_passes: int = 64) -> CompactionStats:
    """Percolate operations upward until fixpoint.

    With ``rename=True`` this is the paper's optimization level 2 behaviour;
    without it, level 1.  Returns :class:`CompactionStats`.
    """
    stats = CompactionStats()
    for _ in range(max_passes):
        stats.passes += 1
        made_progress = _compaction_pass(graph, rename, max_width, stats)
        stats.deleted_nodes += delete_empty_nodes(graph)
        if not made_progress:
            break
    return stats


def _compaction_pass(graph: ProgramGraph, rename: bool,
                     max_width: Optional[int],
                     stats: CompactionStats) -> bool:
    liveness = compute_liveness(graph)
    live_in = liveness.live_in
    live_out = liveness.live_out
    order = graph.rpo_order()
    rpo_index = {nid: i for i, nid in enumerate(order)}
    moved_any = False

    for nid in order:
        node = graph.nodes.get(nid)
        if node is None or not node.preds:
            continue
        for op in list(node.ops):
            if op not in node.ops:
                continue
            preds = list(dict.fromkeys(node.preds))
            if any(p == nid for p in preds):
                continue
            # Forward motion only (termination + no cycling around loops).
            if any(rpo_index.get(p, -1) >= rpo_index[nid] for p in preds):
                continue
            if not _movable_from_source(op, node):
                continue
            verdicts = [
                _check_target(op, node, graph.nodes[p], live_in, max_width)
                for p in preds
            ]
            if any(v is _BLOCKED for v in verdicts):
                continue
            needs_rename = any(v is _RENAME for v in verdicts)
            if needs_rename and not rename:
                continue

            if needs_rename:
                fresh = graph.new_temp(op.dest.is_float)
                for p in preds:
                    clone = op.clone()
                    clone.dest = fresh
                    graph.nodes[p].ops.append(clone)
                    live_out[p] = live_out[p] | {fresh}
                mov_op = Op.FMOV if op.dest.is_float else Op.MOV
                index = node.ops.index(op)
                node.ops[index] = Instruction(
                    mov_op, dest=op.dest, srcs=(fresh,),
                    origin=op.origin, loc=op.loc)
                live_in[nid] = live_in[nid] | {fresh}
                stats.renames += 1
                stats.copies += len(preds) - 1
            else:
                node.ops.remove(op)
                first = True
                for p in preds:
                    moved = op if first else op.clone()
                    first = False
                    graph.nodes[p].ops.append(moved)
                    if op.dest is not None:
                        live_out[p] = live_out[p] | {op.dest}
                if op.dest is not None:
                    live_in[nid] = live_in[nid] | {op.dest}
                stats.moves += 1
                stats.copies += len(preds) - 1
            moved_any = True
    return moved_any


def delete_empty_nodes(graph: ProgramGraph) -> int:
    """The *delete* transformation: splice out empty single-successor nodes.

    Every deleted node shortens some path by one cycle, which is where
    compaction's speedup comes from — and what brings a producer and its
    consumer into adjacent cycles.
    """
    deleted = 0
    changed = True
    while changed:
        changed = False
        for nid in list(graph.nodes):
            node = graph.nodes[nid]
            if not node.is_empty or len(node.succs) != 1:
                continue
            succ = node.succs[0]
            if succ == nid:
                continue  # empty self-loop: never deletable
            for pred in list(node.preds):
                graph.redirect_edge(pred, nid, succ)
            graph.remove_edge(nid, succ)
            if nid == graph.entry:
                graph.entry = succ
            graph.remove_node(nid)
            deleted += 1
            changed = True
    return deleted
