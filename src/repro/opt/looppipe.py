"""Loop pipelining by unroll-and-compact.

The UCI VLIW compiler's loop pipelining (Potasman's percolation-based
pipelining, [10] in the paper) overlaps successive loop iterations.  We
reproduce its *effect* with the Aiken–Nicolau recipe:

1. unroll each innermost natural loop in place (plain body duplication —
   every copy keeps its exit test, so semantics are preserved exactly for
   any trip count);
2. let percolation scheduling compact across the iteration seams, which are
   now ordinary forward edges.

After compaction, an operation from iteration *i+1* can sit in the same or
the adjacent cycle as an operation from iteration *i* — which is how the
paper's cross-iteration sequences (an add feeding a multiply in the next
iteration) become *adjacent* and therefore detectable as chainable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.cfg.graph import ProgramGraph
from repro.cfg.loops import NaturalLoop, find_natural_loops


@dataclass
class PipelineStats:
    """What :func:`pipeline_loops` did to one graph."""

    loops_seen: int = 0
    loops_unrolled: int = 0
    copies_made: int = 0
    skipped_calls: int = 0
    skipped_multi_latch: int = 0
    skipped_size: int = 0


def pipeline_loops(graph: ProgramGraph, factor: int = 2,
                   max_body_nodes: int = 400) -> PipelineStats:
    """Unroll every eligible innermost loop of *graph* by *factor*.

    Loops are skipped when they contain calls (calls are scheduling
    barriers — overlap would buy nothing), have several latches (irregular
    ``continue`` control flow), or exceed ``max_body_nodes``.
    """
    stats = PipelineStats()
    if factor < 2:
        return stats
    loops = find_natural_loops(graph)
    stats.loops_seen = len(loops)
    innermost = [lp for lp in loops if lp.is_innermost(loops)]
    for loop in innermost:
        if len(loop.latches) != 1:
            stats.skipped_multi_latch += 1
            continue
        if loop.contains_call(graph):
            stats.skipped_calls += 1
            continue
        if loop.size > max_body_nodes:
            stats.skipped_size += 1
            continue
        stats.copies_made += _unroll_loop(graph, loop, factor)
        stats.loops_unrolled += 1
    return stats


def _unroll_loop(graph: ProgramGraph, loop: NaturalLoop, factor: int) -> int:
    """Clone the loop body ``factor - 1`` times and chain the copies.

    The original latch's back edge is redirected to the first copy's
    header; each copy's latch feeds the next copy; the last copy's latch
    closes the cycle back to the original header.  Every copy keeps its own
    exit edges, so any-trip-count semantics are untouched.
    """
    header = loop.header
    latch = loop.latches[0]
    body = sorted(loop.body)
    copies: List[Dict[int, int]] = []

    for _ in range(factor - 1):
        mapping: Dict[int, int] = {}
        for nid in body:
            twin = graph.new_node()
            original = graph.nodes[nid]
            twin.ops = [op.clone() for op in original.ops]
            twin.control = (original.control.clone()
                            if original.control is not None else None)
            mapping[nid] = twin.id
        copies.append(mapping)

    # Wire each copy's internal and exit edges.  The seam edge
    # (latch -> header inside the copy) goes to the *next* copy's header,
    # or back to the original header for the last copy.
    for j, mapping in enumerate(copies):
        next_header = (copies[j + 1][header] if j + 1 < len(copies)
                       else header)
        for nid in body:
            for succ in graph.nodes[nid].succs:
                src = mapping[nid]
                if nid == latch and succ == header:
                    graph.add_edge(src, next_header)
                elif succ in loop.body:
                    graph.add_edge(src, mapping[succ])
                else:
                    graph.add_edge(src, succ)

    # Finally redirect the original back edge into the first copy.
    graph.redirect_edge(latch, header, copies[0][header])
    return len(copies) * len(body)
