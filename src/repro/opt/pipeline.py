"""The optimization-level driver (the paper's three compiler configurations).

``optimize_module`` takes a linear :class:`~repro.ir.module.Module` (front
end output) and produces the program-graph module the sequence analyzer and
simulator consume, at one of the paper's levels:

====== ================================================================
Level  Meaning (paper §5, step 3)
====== ================================================================
0      no optimization — the sequential one-op-per-node graph
1      full optimization with loop pipelining and percolation
       scheduling but **without** register renaming
2      level 1 plus register renaming
====== ================================================================

Both level 1 and 2 run the classic cleanups (fold/propagate/coalesce/DCE)
and loop-invariant code motion first — "full optimization" — then loop
pipelining (unroll), then percolation compaction, then a final DCE.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cfg.build import build_module_graphs
from repro.cfg.graph import GraphModule
from repro.ir.module import Module
from repro.opt.classic import dead_code_elimination, run_cleanups
from repro.opt.licm import hoist_loop_invariants
from repro.opt.looppipe import PipelineStats, pipeline_loops
from repro.opt.percolation import (CompactionStats, compact_graph,
                                   delete_empty_nodes)


class OptLevel(enum.IntEnum):
    """The paper's three optimization levels."""

    NONE = 0
    PIPELINED = 1
    RENAMED = 2

    @property
    def uses_renaming(self) -> bool:
        return self is OptLevel.RENAMED

    @property
    def label(self) -> str:
        return {
            OptLevel.NONE: "No Optimization",
            OptLevel.PIPELINED: "Pipelined",
            OptLevel.RENAMED: "Pipelined + Renamed",
        }[self]


@dataclass
class OptimizationReport:
    """Per-function statistics from one ``optimize_module`` run."""

    level: OptLevel
    cleanups: Dict[str, Dict[str, int]] = field(default_factory=dict)
    licm_hoisted: Dict[str, int] = field(default_factory=dict)
    pipelining: Dict[str, PipelineStats] = field(default_factory=dict)
    compaction: Dict[str, CompactionStats] = field(default_factory=dict)

    def total_moves(self) -> int:
        return sum(c.moves + c.renames for c in self.compaction.values())

    def total_unrolled(self) -> int:
        return sum(p.loops_unrolled for p in self.pipelining.values())


def optimize_module(module: Module, level: OptLevel,
                    unroll_factor: int = 2,
                    max_width: Optional[int] = None,
                    enable_pipelining: bool = True,
                    enable_compaction: bool = True,
                    enable_licm: bool = True,
                    ) -> "tuple[GraphModule, OptimizationReport]":
    """Compile *module* to a program-graph module at *level*.

    Returns ``(graph_module, report)``.  The input module is not modified;
    graphs are built fresh from the linear code.  The ``enable_*`` switches
    exist for ablation studies — the paper's levels 1/2 correspond to all
    of them on (``unroll_factor >= 2`` gives loop pipelining; ``1``
    disables it without disabling percolation).
    """
    level = OptLevel(level)
    gm = build_module_graphs(module)
    report = OptimizationReport(level=level)
    if level is OptLevel.NONE:
        return gm, report

    for name, graph in gm.graphs.items():
        report.cleanups[name] = run_cleanups(graph)
        if enable_licm:
            report.licm_hoisted[name] = hoist_loop_invariants(graph)
        dead_code_elimination(graph)
        if enable_pipelining:
            report.pipelining[name] = pipeline_loops(graph,
                                                     factor=unroll_factor)
        if enable_compaction:
            report.compaction[name] = compact_graph(
                graph, rename=level.uses_renaming, max_width=max_width)
        dead_code_elimination(graph)
        delete_empty_nodes(graph)
        graph.prune_unreachable()
    return gm, report
