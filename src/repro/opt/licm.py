"""Loop-invariant code motion.

Hoists loop-invariant pure operations — and loads with constant indices
from arrays no store in the loop may alias — into a freshly created loop
preheader.  The pass is deliberately conservative:

* only single-static-definition registers are hoisted (so executing the
  definition earlier can never clobber a value another path needs);
* trapping operations (divides, intrinsics) stay put, except constant-index
  loads that are provably in bounds — the common "global scalar read in the
  loop condition" pattern that would otherwise dominate every profile;
* loops containing calls keep their loads (a callee may store anywhere).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cfg.graph import Node, ProgramGraph
from repro.cfg.loops import NaturalLoop, find_natural_loops
from repro.ir.instr import Instruction
from repro.ir.ops import Op, OpKind, kind
from repro.ir.values import Constant, VirtualReg
from repro.opt.alias import may_alias

_PURE_KINDS = {OpKind.INT_ARITH, OpKind.FLOAT_ARITH, OpKind.COMPARE,
               OpKind.CONVERT, OpKind.DATA}
_TRAPPING_PURE = {Op.DIV, Op.MOD, Op.FDIV}


def hoist_loop_invariants(graph: ProgramGraph,
                          max_rounds: int = 10) -> int:
    """Hoist invariants out of every natural loop; returns ops hoisted."""
    total = 0
    for _ in range(max_rounds):
        loops = find_natural_loops(graph)
        hoisted = 0
        for loop in loops:
            if not loop.is_innermost(loops):
                continue
            hoisted += _hoist_one_loop(graph, loop)
        total += hoisted
        if hoisted == 0:
            break
    return total


def _hoist_one_loop(graph: ProgramGraph, loop: NaturalLoop) -> int:
    body_defs: Dict[str, int] = {}
    loop_has_call = False
    loop_stores = []
    for nid in loop.body:
        node = graph.nodes[nid]
        for ins in node.ops:
            if ins.op is Op.CALL:
                loop_has_call = True
            if ins.is_store:
                loop_stores.append(ins)
            for d in ins.defs():
                body_defs[d.name] = body_defs.get(d.name, 0) + 1

    global_def_counts: Dict[str, int] = {}
    for node in graph.nodes.values():
        for ins in node.ops:
            for d in ins.defs():
                global_def_counts[d.name] = \
                    global_def_counts.get(d.name, 0) + 1

    candidates: List[Instruction] = []
    owner: Dict[int, int] = {}  # instruction uid -> node id

    def invariant_operands(ins: Instruction) -> bool:
        for s in ins.srcs:
            if isinstance(s, VirtualReg) and s.name in body_defs:
                return False
        return True

    for nid in sorted(loop.body):
        node = graph.nodes[nid]
        for ins in node.ops:
            if ins.dest is None:
                continue
            if global_def_counts.get(ins.dest.name, 0) != 1:
                continue
            if not invariant_operands(ins):
                continue
            if ins.is_load:
                if loop_has_call:
                    continue
                if not isinstance(ins.srcs[0], Constant):
                    continue
                if ins.srcs[0].value >= ins.array.size:
                    continue
                if any(may_alias(ins.array, st.array)
                       for st in loop_stores):
                    continue
            elif kind(ins.op) in _PURE_KINDS:
                if ins.op in _TRAPPING_PURE:
                    continue
            else:
                continue
            candidates.append(ins)
            owner[ins.uid] = nid

    if not candidates:
        return 0

    preheader = _get_preheader(graph, loop)
    for ins in candidates:
        node = graph.nodes[owner[ins.uid]]
        node.ops.remove(ins)
        preheader.ops.append(ins)
        # The destination is no longer defined inside the loop, but we do
        # not re-derive invariance within this call — the driver loops.
    return len(candidates)


def _get_preheader(graph: ProgramGraph, loop: NaturalLoop) -> Node:
    """Create a fresh preheader node in front of the loop header.

    Always fresh, never reused: the candidates of one hoisting round are
    mutually independent (an op depending on another candidate is not yet
    invariant in that round), so they may share one VLIW node — but they
    must not share a node with *earlier* definitions they might read,
    which reusing an existing predecessor node could cause.  Later rounds
    therefore stack further preheaders in front; percolation's delete
    transformation cleans up any empties.
    """
    header_node = graph.nodes[loop.header]
    outside_preds = [p for p in header_node.preds if p not in loop.body]
    preheader = graph.new_node()
    for p in list(outside_preds):
        node = graph.nodes[p]
        while loop.header in node.succs:
            graph.redirect_edge(p, loop.header, preheader.id)
    graph.add_edge(preheader.id, loop.header)
    if graph.entry == loop.header:
        graph.entry = preheader.id
    return preheader
