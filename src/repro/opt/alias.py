"""Conservative may-alias rules for array references.

The machine has named arrays only — no pointers — so aliasing is nearly
syntactic.  The one wrinkle is array *parameters*: inside a callee an array
parameter may be bound to any caller array of the same element type, so a
parameter conservatively aliases everything of its element type.
"""

from __future__ import annotations

from repro.ir.values import ArraySymbol


def may_alias(a: ArraySymbol, b: ArraySymbol) -> bool:
    """True when accesses to *a* and *b* may touch the same storage."""
    if a.name == b.name:
        return True
    if a.is_float != b.is_float:
        return False
    # A non-global symbol is either a function-local array (distinct
    # storage, distinct name) or an array parameter (unknown binding).
    # Locals are instantiated per call and can never overlap anything
    # else, but we cannot tell locals from parameters by the symbol
    # alone, so treat every non-global as a potential parameter.
    if not a.is_global or not b.is_global:
        return True
    return False


def memory_conflict(op_a, op_b) -> bool:
    """True when two memory operations must keep their relative order.

    Load/load pairs never conflict; anything involving a store conflicts
    when the arrays may alias.
    """
    if op_a.array is None or op_b.array is None:
        return False
    if not (op_a.is_store or op_b.is_store):
        return False
    return may_alias(op_a.array, op_b.array)
