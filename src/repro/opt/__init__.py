"""The optimizing compiler (paper Figure 2, step 3).

Stand-in for the UCI VLIW compiler: percolation scheduling
(:mod:`repro.opt.percolation`), loop pipelining by unroll-and-compact
(:mod:`repro.opt.looppipe`), register renaming (integrated into percolation),
plus the classic enabling cleanups (constant folding, copy propagation and
coalescing, dead-code elimination, loop-invariant code motion).

The paper's three optimization levels map to :class:`OptLevel`:

* ``OptLevel.NONE`` (0) — the sequential program graph untouched;
* ``OptLevel.PIPELINED`` (1) — cleanups, loop pipelining, percolation
  scheduling, **without** register renaming;
* ``OptLevel.RENAMED`` (2) — level 1 plus register renaming.
"""

from repro.opt.pipeline import OptLevel, OptimizationReport, optimize_module
from repro.opt.percolation import compact_graph, delete_empty_nodes
from repro.opt.looppipe import pipeline_loops
from repro.opt.classic import (constant_fold, copy_propagate, coalesce_moves,
                               dead_code_elimination, run_cleanups)
from repro.opt.licm import hoist_loop_invariants

__all__ = [
    "OptLevel",
    "OptimizationReport",
    "optimize_module",
    "compact_graph",
    "delete_empty_nodes",
    "pipeline_loops",
    "constant_fold",
    "copy_propagate",
    "coalesce_moves",
    "dead_code_elimination",
    "run_cleanups",
    "hoist_loop_invariants",
]
