"""Exploration-level performance benchmarks: suite-wide + cold-start.

``bench_engine.py`` watches single simulations and per-benchmark
exploration; this file watches the two paths PR 5 added:

* **the exploration study** — the full 12-benchmark design-space matrix
  behind ``python -m repro explore-study``, serial vs ``jobs=4`` on the
  persistent pool (per-benchmark base simulation gating its budget
  cells).  As with ``bench_study.py``, the parallel ratio is asserted
  nowhere — it depends on core count — but both shapes assert the full
  matrix and identical-by-construction results;
* **the compile-artifact disk cache** — cold-process module setup
  (lowering + code generation from scratch) vs the same setup served
  from a warm ``REPRO_CACHE`` directory, measured on the codegen tier
  where generation is most expensive.  Every timed iteration starts
  from a *fresh* front-end compile, exactly like a new process.

Run with ``--benchmark-json=bench_explore.json`` (as CI does) to emit
the same JSON shape as the other benchmark files; the headline numbers
are recorded in ``benchmarks/results/bench_explore.json``.
"""

import pytest

from repro.exec.pool import available_cpus
from repro.feedback.study import (ExplorationStudyConfig,
                                  run_exploration_study)
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim import diskcache
from repro.sim.machine import run_module
from repro.suite.registry import all_benchmarks, get_benchmark
from repro.suite.runner import compile_benchmark

BUDGETS = (1500, 2500)


def _assert_full_matrix(study):
    names = [spec.name for spec in all_benchmarks()]
    assert study.names() == names
    for name in names:
        for budget in BUDGETS:
            assert study.exploration(name, budget).measured


def test_exploration_study_serial(benchmark):
    """The serial baseline: the denominator of the parallel speedup."""
    study = benchmark.pedantic(
        run_exploration_study,
        args=(ExplorationStudyConfig(budgets=BUDGETS, jobs=1),),
        rounds=3, iterations=1)
    _assert_full_matrix(study)


def test_exploration_study_parallel(benchmark):
    """The matrix on four workers: base tasks fan out immediately, each
    benchmark's budget cells follow its base."""
    if available_cpus() < 2:
        pytest.skip("single-CPU machine: a process pool cannot win")
    study = benchmark.pedantic(
        run_exploration_study,
        args=(ExplorationStudyConfig(budgets=BUDGETS, jobs=4),),
        rounds=3, iterations=1)
    _assert_full_matrix(study)


# -- cold-start: the disk cache ----------------------------------------------------


SPEC = get_benchmark("edge")
INPUTS = SPEC.generate_inputs(0)


def _cold_setup(engine):
    """What a cold process pays before its first simulated cycle: front
    end + optimizer (always) and lowering/generation (unless the disk
    tier serves them)."""
    gm, _ = optimize_module(compile_benchmark(SPEC), OptLevel(1))
    return run_module(gm, INPUTS, engine=engine)


@pytest.fixture()
def cold_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(diskcache.CACHE_ENV_VAR, str(tmp_path))
    diskcache.reset_cache_state()
    yield
    diskcache.reset_cache_state()


@pytest.fixture()
def warm_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(diskcache.CACHE_ENV_VAR, str(tmp_path))
    diskcache.reset_cache_state()
    _cold_setup("codegen")  # prime both tiers
    yield
    diskcache.reset_cache_state()


def test_codegen_cold_start_no_cache(benchmark, cold_cache):
    """Cold start with an empty cache directory: full lowering +
    generation, plus the store."""
    def run():
        diskcache.get_cache().clear()
        return _cold_setup("codegen")
    result = benchmark.pedantic(run, rounds=5, iterations=1)
    assert result.cycles > 0


def test_codegen_cold_start_warm_cache(benchmark, warm_cache):
    """Cold start against a warm cache: lowering and generation served
    from disk (the ratio to the test above is the cold-start win)."""
    result = benchmark.pedantic(lambda: _cold_setup("codegen"),
                                rounds=5, iterations=1)
    assert result.cycles > 0
    cache = diskcache.get_cache()
    assert cache.hits["codegen"] >= 5  # every round was served
    assert not cache.corrupt


def test_exploration_study_warm_cache(benchmark, warm_cache):
    """A small exploration study with every compile artifact already on
    disk — the repeated-CLI-invocation shape ``explore-study`` users
    actually hit."""
    config = ExplorationStudyConfig(benchmarks=("edge", "sewha"),
                                    budgets=BUDGETS, engine="codegen",
                                    jobs=1)
    run_exploration_study(config)  # prime the fused finalists too
    study = benchmark.pedantic(run_exploration_study, args=(config,),
                               rounds=3, iterations=1)
    for name in ("edge", "sewha"):
        for budget in BUDGETS:
            assert study.exploration(name, budget).measured
