"""Exploration-level performance benchmarks: suite-wide + cold-start.

``bench_engine.py`` watches single simulations and per-benchmark
exploration; this file watches the two paths PR 5 added:

* **the exploration study** — the full 12-benchmark design-space matrix
  behind ``python -m repro explore-study``, serial vs ``jobs=4`` on the
  persistent pool (per-benchmark base simulation gating its budget
  cells).  As with ``bench_study.py``, the parallel ratio is asserted
  nowhere — it depends on core count — but both shapes assert the full
  matrix and identical-by-construction results;
* **the compile-artifact disk cache** — cold-process module setup
  (lowering + code generation from scratch) vs the same setup served
  from a warm ``REPRO_CACHE`` directory, measured on the codegen tier
  where generation is most expensive.  Every timed iteration starts
  from a *fresh* front-end compile, exactly like a new process.

Run with ``--benchmark-json=bench_explore.json`` (as CI does) to emit
the same JSON shape as the other benchmark files; the headline numbers
are recorded in ``benchmarks/results/bench_explore.json``.
"""

import pytest

from repro.asip.explore import Candidate, select_finalists
from repro.exec.pool import available_cpus
from repro.feedback.study import (ExplorationStudyConfig,
                                  FrontierStudyConfig,
                                  run_exploration_study,
                                  run_frontier_study)
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim import diskcache
from repro.sim.machine import run_module
from repro.suite.registry import all_benchmarks, get_benchmark
from repro.suite.runner import compile_benchmark

BUDGETS = (1500, 2500)


def _assert_full_matrix(study):
    names = [spec.name for spec in all_benchmarks()]
    assert study.names() == names
    for name in names:
        for budget in BUDGETS:
            assert study.exploration(name, budget).measured


def test_exploration_study_serial(benchmark):
    """The serial baseline: the denominator of the parallel speedup."""
    study = benchmark.pedantic(
        run_exploration_study,
        args=(ExplorationStudyConfig(budgets=BUDGETS, jobs=1),),
        rounds=3, iterations=1)
    _assert_full_matrix(study)


def test_exploration_study_parallel(benchmark):
    """The matrix on four workers: base tasks fan out immediately, each
    benchmark's budget cells follow its base."""
    if available_cpus() < 2:
        pytest.skip("single-CPU machine: a process pool cannot win")
    study = benchmark.pedantic(
        run_exploration_study,
        args=(ExplorationStudyConfig(budgets=BUDGETS, jobs=4),),
        rounds=3, iterations=1)
    _assert_full_matrix(study)


# -- cold-start: the disk cache ----------------------------------------------------


SPEC = get_benchmark("edge")
INPUTS = SPEC.generate_inputs(0)


def _cold_setup(engine):
    """What a cold process pays before its first simulated cycle: front
    end + optimizer (always) and lowering/generation (unless the disk
    tier serves them)."""
    gm, _ = optimize_module(compile_benchmark(SPEC), OptLevel(1))
    return run_module(gm, INPUTS, engine=engine)


@pytest.fixture()
def cold_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(diskcache.CACHE_ENV_VAR, str(tmp_path))
    diskcache.reset_cache_state()
    yield
    diskcache.reset_cache_state()


@pytest.fixture()
def warm_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(diskcache.CACHE_ENV_VAR, str(tmp_path))
    diskcache.reset_cache_state()
    _cold_setup("codegen")  # prime both tiers
    yield
    diskcache.reset_cache_state()


def test_codegen_cold_start_no_cache(benchmark, cold_cache):
    """Cold start with an empty cache directory: full lowering +
    generation, plus the store."""
    def run():
        diskcache.get_cache().clear()
        return _cold_setup("codegen")
    result = benchmark.pedantic(run, rounds=5, iterations=1)
    assert result.cycles > 0


def test_codegen_cold_start_warm_cache(benchmark, warm_cache):
    """Cold start against a warm cache: lowering and generation served
    from disk (the ratio to the test above is the cold-start win)."""
    result = benchmark.pedantic(lambda: _cold_setup("codegen"),
                                rounds=5, iterations=1)
    assert result.cycles > 0
    cache = diskcache.get_cache()
    assert cache.hits["codegen"] >= 5  # every round was served
    assert not cache.corrupt


def test_exploration_study_warm_cache(benchmark, warm_cache):
    """A small exploration study with every compile artifact already on
    disk — the repeated-CLI-invocation shape ``explore-study`` users
    actually hit."""
    config = ExplorationStudyConfig(benchmarks=("edge", "sewha"),
                                    budgets=BUDGETS, engine="codegen",
                                    jobs=1)
    run_exploration_study(config)  # prime the fused finalists too
    study = benchmark.pedantic(run_exploration_study, args=(config,),
                               rounds=3, iterations=1)
    for name in ("edge", "sewha"):
        for budget in BUDGETS:
            assert study.exploration(name, budget).measured


# -- the frontier sweep vs a dense budget grid -------------------------------------
#
# The headline numbers of PR 7: a 64-point budget grid answered the old
# way (one rank+select+measure cycle per cell) vs one frontier sweep
# per benchmark (every distinct finalist chain set measured exactly
# once, every budget answered by bisection).  The ratio between the two
# tests below is the frontier win; the answers are asserted
# bit-identical inside the frontier leg.

DENSE_NAMES = ("sewha", "dft")
DENSE_BUDGETS = tuple(range(150, 150 + 64 * 38, 38))  # 64 budgets
DENSE_CEILING = DENSE_BUDGETS[-1]


def _cell_projection(result):
    return (
        tuple((c.pattern, c.frequency, c.area, c.cycles_saved)
              for c in result.candidates),
        tuple((tuple(p.labels()), p.evaluation.base_cycles,
               p.evaluation.chained_cycles, p.evaluation.chain_issues)
              for p in result.measured),
    )


def test_dense_grid_per_budget_study(benchmark):
    """64 budgets the old way: the denominator of the frontier win."""
    study = benchmark.pedantic(
        run_exploration_study,
        args=(ExplorationStudyConfig(benchmarks=DENSE_NAMES,
                                     budgets=DENSE_BUDGETS, jobs=1),),
        rounds=1, iterations=1)
    for name in DENSE_NAMES:
        assert study.exploration(name, DENSE_CEILING).measured


def test_dense_grid_frontier_sweep(benchmark):
    """The same 64 budgets from one sweep per benchmark, answered by
    bisection — and pinned bit-identical to the per-budget study."""
    grid = run_exploration_study(ExplorationStudyConfig(
        benchmarks=DENSE_NAMES, budgets=DENSE_BUDGETS, jobs=1))
    study = benchmark.pedantic(
        run_frontier_study,
        args=(FrontierStudyConfig(benchmarks=DENSE_NAMES,
                                  max_budget=DENSE_CEILING, jobs=1),),
        rounds=3, iterations=1)
    for name in DENSE_NAMES:
        for budget in DENSE_BUDGETS:
            assert _cell_projection(study.result_at(name, budget)) == \
                _cell_projection(grid.exploration(name, budget))


# -- the finalist enumeration ------------------------------------------------------


def _synthetic_candidates(count=12):
    """A ranked list shaped like a real pool: descending estimate,
    areas spread so the exhaustive enumeration sees many viable
    subsets (the worst case the per-call precompute was added for)."""
    return [
        Candidate(pattern=("load", "add", f"op{i}"),
                  frequency=30.0 - i, area=180 + 53 * i,
                  cycles_saved=2, cycles_accounted=1000 * (count - i))
        for i in range(count)
    ]


def test_select_finalists_enumeration(benchmark):
    """The pure enumeration stage: 2^12 subsets per call.  PR 7 hoists
    the ``estimate``/``area`` property reads out of the subset loops —
    this leg pins the O(2^n) recompute from creeping back."""
    candidates = _synthetic_candidates()
    budget = sum(c.area for c in candidates) // 2
    combos = benchmark(select_finalists, candidates, budget, 4)
    assert combos
    for combo in combos:
        assert sum(candidates[i].area for i in combo) <= budget
