"""Regenerate paper Figure 4: length-4 sequence frequencies across the
combined suite at the three optimization levels."""

from repro.reporting.figures import figure4, figure_series


def test_figure4(benchmark, full_study, save_artifact):
    series = benchmark(figure_series, full_study, 4)
    save_artifact("figure4.txt", figure4(full_study))

    assert series[0] and series[1] and series[2]
    assert sum(series[1]) > sum(series[0]), \
        "pipelining exposes longer chains (level 1 > level 0)"
    assert sum(series[2]) < sum(series[1]), \
        "renaming breaks long chains (level 2 < level 1)"
