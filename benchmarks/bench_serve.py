"""Serve-daemon benchmarks: result-tier hits vs fresh evaluations.

The point of ``repro serve`` is that a repeated question costs a socket
round-trip plus one disk read instead of a full evaluation.  Three legs
pin that down:

* **the warm hit** — a primed ``explore-study`` request answered from
  the whole-result tier (zero scheduler tasks, zero simulator
  invocations); this is the headline latency of the service;
* **the fresh evaluation** — an ``analyze`` request with a new seed
  every round, so each one misses the tier and runs the whole
  compile/simulate/detect pipeline inside the daemon.  The ratio to
  the hit leg is what the result tier buys;
* **the status round-trip** — protocol + event-loop floor with no
  evaluation at all.

Run with ``--benchmark-json=bench_serve.json`` (as CI does); the
headline numbers are recorded in ``benchmarks/results/bench_serve.json``.
"""

import pytest

from repro.serve import ReproServer, wait_for_server
from repro.sim import diskcache

EXPLORE_REQ = {"op": "explore-study", "benchmarks": ["sewha"],
               "budgets": [2500], "jobs": 1}

ANALYZE_SRC = ("int a[8]; int b[8]; void main() { int i; "
               "for (i = 0; i < 8; i = i + 1) "
               "{ b[i] = a[i] * 3 + 1; } }")


@pytest.fixture()
def serve(tmp_path, monkeypatch):
    """A live daemon on a private socket with a private result tier."""
    monkeypatch.setenv(diskcache.CACHE_ENV_VAR, str(tmp_path / "cache"))
    monkeypatch.setenv(diskcache.RESULT_ENV_VAR, "1")
    monkeypatch.delenv(diskcache.MAX_MB_ENV_VAR, raising=False)
    diskcache.reset_cache_state()
    srv = ReproServer(socket_path=str(tmp_path / "serve.sock"), jobs=1)
    thread = srv.run_in_thread()
    client = wait_for_server(socket_path=srv.socket_path)
    yield client
    try:
        client.request({"op": "shutdown"})
    finally:
        client.close()
    thread.join(30)
    assert not thread.is_alive()
    diskcache.reset_cache_state()


def test_result_tier_hit(benchmark, serve):
    """A primed explore-study request: socket round-trip + disk read."""
    prime = serve.request(EXPLORE_REQ)
    assert prime["ok"], prime.get("error")
    assert prime["meta"]["result_cache"] == "miss"
    response = benchmark.pedantic(serve.request, args=(EXPLORE_REQ,),
                                  rounds=5, iterations=1, warmup_rounds=1)
    assert response["ok"]
    assert response["meta"]["result_cache"] == "hit"
    assert response["result"] == prime["result"]


def test_analyze_fresh_evaluation(benchmark, serve):
    """A new seed every round: each request misses the tier and runs
    the full compile/simulate/detect pipeline in the daemon."""
    seeds = iter(range(10_000))

    def fresh():
        request = {"op": "analyze", "source": ANALYZE_SRC,
                   "seed": next(seeds)}
        response = serve.request(request)
        assert response["ok"], response.get("error")
        assert response["meta"]["result_cache"] == "miss"
        return response

    response = benchmark.pedantic(fresh, rounds=5, iterations=1,
                                  warmup_rounds=1)
    assert response["result"]["coverage"]["steps"]


def test_status_roundtrip(benchmark, serve):
    """Protocol + event-loop floor: no evaluation, no disk."""
    response = benchmark.pedantic(
        serve.request, args=({"op": "status"},),
        rounds=5, iterations=1, warmup_rounds=1)
    assert response["ok"]
    assert response["result"]["stats"]["errors"] == 0
