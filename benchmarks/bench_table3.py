"""Regenerate paper Table 3: iterative sequence coverage with and without
the parallelizing optimizations, on the paper's subset (sewha, feowf,
bspline, edge, iir).

Expected shape: "by using feedback from our optimizing compiler, we were
able to achieve higher coverage rates with fewer operation sequences" —
compared greedy-prefix-wise (same number of chained instructions), the
optimized analysis covers at least as much, and on most benchmarks total
coverage is strictly higher.
"""

from repro.reporting.tables import TABLE3_BENCHMARKS, table3, table3_rows


def test_table3(benchmark, full_study, save_artifact):
    rows = benchmark(table3_rows, full_study, TABLE3_BENCHMARKS)
    save_artifact("table3.txt", table3(full_study))

    strictly_better = 0
    for name in TABLE3_BENCHMARKS:
        with_opt = rows[name][True]
        without = rows[name][False]
        assert with_opt.steps, f"{name}: no sequences found with opt"
        k = min(len(with_opt.steps), len(without.steps))
        if k:
            prefix_with = sum(s.contribution for s in with_opt.steps[:k])
            prefix_without = sum(s.contribution
                                 for s in without.steps[:k])
            assert prefix_with >= prefix_without - 1e-9, \
                f"{name}: optimized prefix coverage must dominate"
        if with_opt.coverage > without.coverage:
            strictly_better += 1
    assert strictly_better >= 3, \
        "optimization must strictly raise total coverage on most of the " \
        "Table-3 subset (paper: on all five)"
