"""Regenerate paper Figure 5: per-benchmark length-2 chainable sequences
with dynamic frequency >= 5% (optimization level 1)."""

from repro.reporting.figures import FIGURE_MIN_FREQUENCY, figure5


def _per_benchmark_rows(study):
    rows = {}
    for name, bench in study.benchmarks.items():
        detection = bench.detection_at(1)
        rows[name] = [(seq, freq) for seq, freq in detection.top(2)
                      if freq >= FIGURE_MIN_FREQUENCY]
    return rows


def test_figure5(benchmark, full_study, save_artifact):
    rows = benchmark(_per_benchmark_rows, full_study)
    save_artifact("figure5.txt", figure5(full_study))

    # Every benchmark shows at least one significant length-2 sequence,
    # as in the paper's Figure 5 (all twelve benchmarks plotted).
    missing = [name for name, seqs in rows.items() if not seqs]
    assert not missing, f"benchmarks without >=5% sequences: {missing}"
    # The DSP MAC story: float benchmarks surface fload/fmultiply chains.
    fir_names = {tuple(seq) for seq, _ in rows["fir"]}
    assert any("fmultiply" in name for name in
               {c for seq in fir_names for c in seq}), \
        "fir must surface multiplier chains"
