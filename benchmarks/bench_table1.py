"""Regenerate paper Table 1: benchmark descriptions.

The table is pure metadata, so the timed portion is the registry walk plus
rendering — the part a user re-runs when extending the suite.
"""

from repro.reporting.tables import table1


def test_table1(benchmark, save_artifact):
    text = benchmark(table1)
    save_artifact("table1.txt", text)
    for name in ("fir", "edge", "feowf"):
        assert name in text
