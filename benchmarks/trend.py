"""Benchmark trend checker: fresh results vs the committed baselines.

Diffs freshly generated ``--benchmark-json`` files (pytest-benchmark's
shape) against the JSON snapshots committed under
``benchmarks/results/``, matched by benchmark *name* on ``stats.mean``.
Prints one regression table per file pair and warns on slowdowns past
the threshold (default 10%).

::

    python benchmarks/trend.py bench_explore.json bench_engine.json
    python benchmarks/trend.py --baseline-dir benchmarks/results \
        --threshold 0.25 artifacts/*.json

Exit code 0 always: machine-to-machine variance (CI runners especially)
makes a hard gate on wall-clock noise-prone, so the table and the
``WARN`` markers are the product — a reviewer's diffstat for
performance.  Benchmarks present on only one side are listed but never
warned about (new legs land without a baseline; retired legs linger in
old snapshots).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Optional


def load_means(path: Path) -> Dict[str, float]:
    """``{benchmark name: stats.mean seconds}`` from one results file."""
    with open(path) as fh:
        data = json.load(fh)
    return {bench["name"]: bench["stats"]["mean"]
            for bench in data.get("benchmarks", [])}


def compare(baseline: Dict[str, float], fresh: Dict[str, float],
            threshold: float):
    """Rows of ``(name, base mean, fresh mean, ratio|None, flag)``.

    ``ratio`` is fresh/base (>1 = slower); ``flag`` is ``"WARN"`` past
    the threshold, ``"ok"`` otherwise, and ``"new"``/``"gone"`` for
    one-sided names (never warned).
    """
    rows = []
    for name in sorted(set(baseline) | set(fresh)):
        base = baseline.get(name)
        now = fresh.get(name)
        if base is None:
            rows.append((name, None, now, None, "new"))
        elif now is None:
            rows.append((name, base, None, None, "gone"))
        else:
            ratio = now / base if base > 0 else float("inf")
            flag = "WARN" if ratio > 1.0 + threshold else "ok"
            rows.append((name, base, now, ratio, flag))
    return rows


def _fmt(seconds: Optional[float]) -> str:
    return "-" if seconds is None else f"{seconds * 1000:10.2f}ms"


def render(rows, threshold: float) -> str:
    width = max([len(name) for name, *_ in rows] + [30])
    lines = [f"{'benchmark':{width}s} {'baseline':>12s} {'fresh':>12s} "
             f"{'ratio':>7s}  flag"]
    lines.append("-" * len(lines[0]))
    for name, base, now, ratio, flag in rows:
        shown = "-" if ratio is None else f"{ratio:6.2f}x"
        lines.append(f"{name:{width}s} {_fmt(base):>12s} {_fmt(now):>12s} "
                     f"{shown:>7s}  {flag}")
    warned = sum(flag == "WARN" for *_, flag in rows)
    if warned:
        lines.append(f"\nWARNING: {warned} benchmark"
                     f"{'s' if warned != 1 else ''} slower than baseline "
                     f"by more than {threshold:.0%}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="diff fresh benchmark JSON against committed "
                    "baselines (warn on >threshold slowdowns)")
    parser.add_argument("fresh", nargs="+",
                        help="freshly generated --benchmark-json files")
    parser.add_argument("--baseline-dir",
                        default=str(Path(__file__).parent / "results"),
                        help="directory of committed snapshots "
                             "(default: %(default)s)")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="warn past this fractional slowdown "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)

    baseline_dir = Path(args.baseline_dir)
    for fresh_path in map(Path, args.fresh):
        baseline_path = baseline_dir / fresh_path.name
        print(f"== {fresh_path.name} "
              f"(baseline: {baseline_path}) ==")
        if not fresh_path.exists():
            print(f"   fresh file missing: {fresh_path} (skipped)\n")
            continue
        if not baseline_path.exists():
            print("   no committed baseline yet (skipped)\n")
            continue
        rows = compare(load_means(baseline_path), load_means(fresh_path),
                       args.threshold)
        print(render(rows, args.threshold))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
