"""Extension experiment X1 (paper §8): ILP characterization of the suite.

The paper closes by proposing to characterize the instruction-level
parallelism of the application suite as multiple-issue feedback.  We
measure dynamic ILP (operations per cycle) per benchmark per level.
Expected shape: level 0 is ~1.0 by construction (one op per node, minus
control-only cycles), level 1 well above 1, level 2 comparable to level 1.
"""

from repro.feedback.ilp import (characterize_ilp, render_ilp_table,
                                suite_ilp_summary)


def test_ilp_characterization(benchmark, full_study, save_artifact):
    rows = benchmark(characterize_ilp, full_study)
    save_artifact("ilp.txt", render_ilp_table(rows))

    summary = suite_ilp_summary(rows)
    assert summary[0] <= 1.0, "sequential schedule: at most one op/cycle"
    assert summary[1] > 1.3, "percolation must expose real ILP"
    assert summary[1] > summary[0]
    # Every benchmark individually speeds up at level 1.
    for row in rows:
        if row.level == 1:
            assert row.speedup > 1.0, row.benchmark
