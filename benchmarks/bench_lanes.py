"""Lane-tier guard-elimination benchmarks.

The lane engine emits the same proof-carrying unguarded loads as the
codegen tier, amortized over a whole batch of seeds.  Each
``batch_ranges_off`` leg (fully guarded, ``REPRO_RANGES=0``) is the
denominator of the speedup recorded by the matching ``batch_ranges_on``
leg; the CI lane-bench step's ``-k "batch or lanegen"`` filter picks
these legs up into ``bench_lanes.json`` alongside the lane-vs-codegen
legs of ``bench_engine.py``.
"""

import pytest

from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim.machine import run_module_batch
from repro.suite.registry import get_benchmark
from repro.suite.runner import compile_benchmark

#: Same load-heavy kernels as bench_engine.py's guard-elimination legs.
GUARD_ELIM_BENCHES = ("fir", "iir", "smooth")

#: Same batch width as bench_engine.py's lane-vs-codegen legs.
BATCH_SEEDS = tuple(range(8))


def _batch_cell(name):
    spec = get_benchmark(name)
    gm, _ = optimize_module(compile_benchmark(spec), OptLevel(2))
    return gm, [spec.generate_inputs(s) for s in BATCH_SEEDS]


@pytest.mark.parametrize("name", GUARD_ELIM_BENCHES)
def test_lanes_batch_ranges_off(benchmark, name, monkeypatch):
    """Fully guarded lane batch (REPRO_RANGES=0)."""
    monkeypatch.setenv("REPRO_RANGES", "0")
    gm, inputs_list = _batch_cell(name)
    run_module_batch(gm, inputs_list, engine="lanes")  # generate once
    results = benchmark(run_module_batch, gm, inputs_list,
                        engine="lanes")
    assert len(results) == len(BATCH_SEEDS)


@pytest.mark.parametrize("name", GUARD_ELIM_BENCHES)
def test_lanes_batch_ranges_on(benchmark, name, monkeypatch):
    """Guard-eliminated lane batch: the ratio against
    ``test_lanes_batch_ranges_off[name]`` is the recorded win."""
    monkeypatch.delenv("REPRO_RANGES", raising=False)
    gm, inputs_list = _batch_cell(name)
    from repro.sim.lanes import generate_lane_module
    assert generate_lane_module(gm, len(BATCH_SEEDS)).bounds is not None
    run_module_batch(gm, inputs_list, engine="lanes")
    results = benchmark(run_module_batch, gm, inputs_list,
                        engine="lanes")
    assert len(results) == len(BATCH_SEEDS)
