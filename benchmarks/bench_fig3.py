"""Regenerate paper Figure 3: length-2 sequence frequencies across the
combined suite at the three optimization levels.

Expected shape (paper §6.1): optimization level 1 detects more sequences
and at higher frequencies than level 0; level 2 (register renaming) pulls
frequencies back down.
"""

from repro.reporting.figures import figure3, figure_series


def test_figure3(benchmark, full_study, save_artifact):
    series = benchmark(figure_series, full_study, 2)
    save_artifact("figure3.txt", figure3(full_study))

    # Shape assertions against the paper.
    assert len(series[1]) >= len(series[0]), \
        "pipelining must expose at least as many distinct sequences"
    assert sum(series[1]) > sum(series[0]), \
        "pipelining must raise total detected frequency"
    assert sum(series[2]) < sum(series[1]), \
        "renaming must reduce total detected frequency (paper's finding)"
