"""Regenerate paper Figure 6: per-benchmark length-4 chainable sequences
with dynamic frequency >= 5% (optimization level 1).

The paper's Figure 6 omits benchmarks with no significant length-4
sequences (iir is absent there); we assert the majority — not necessarily
all — of the suite shows significant length-4 chains after optimization.
"""

from repro.reporting.figures import FIGURE_MIN_FREQUENCY, figure6


def _per_benchmark_rows(study):
    rows = {}
    for name, bench in study.benchmarks.items():
        detection = bench.detection_at(1)
        rows[name] = [(seq, freq) for seq, freq in detection.top(4)
                      if freq >= FIGURE_MIN_FREQUENCY]
    return rows


def test_figure6(benchmark, full_study, save_artifact):
    rows = benchmark(_per_benchmark_rows, full_study)
    save_artifact("figure6.txt", figure6(full_study))

    with_chains = [name for name, seqs in rows.items() if seqs]
    assert len(with_chains) >= 8, \
        f"most benchmarks show length-4 chains, got {with_chains}"
    # Level 0 comparison: optimization exposes length-4 chains.
    level0_with = []
    for name, bench in full_study.benchmarks.items():
        rows0 = [f for _, f in bench.detection_at(0).top(4)
                 if f >= FIGURE_MIN_FREQUENCY]
        if rows0:
            level0_with.append(name)
    assert len(with_chains) >= len(level0_with)
