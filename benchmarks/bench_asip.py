"""Extension experiment X2: closed-loop ASIP synthesis under area budgets.

Closes the paper's Figure-1 loop: the detected sequences drive chained-
instruction synthesis, instruction selection re-targets the code, and the
simulator measures real cycle counts.  Expected shape: measurable speedup
on MAC-heavy integer benchmarks, monotone (non-decreasing) best speedup as
the area budget grows.
"""

import pytest

from repro.asip.explore import explore_designs
from repro.suite.registry import get_benchmark
from repro.suite.runner import compile_benchmark

BUDGETS = (800, 2000, 4000)
BENCHES = ("sewha", "feowf", "bspline")


def _explore_all():
    results = {}
    for name in BENCHES:
        spec = get_benchmark(name)
        module = compile_benchmark(spec)
        inputs = spec.generate_inputs(0)
        per_budget = {}
        for budget in BUDGETS:
            per_budget[budget] = explore_designs(
                module, inputs, area_budget=budget,
                max_candidates=6, measure_top=3)
        results[name] = per_budget
    return results


def test_asip_design_space(benchmark, save_artifact):
    results = benchmark.pedantic(_explore_all, rounds=1, iterations=1)

    lines = ["ASIP design-space exploration (measured on the simulator)",
             ""]
    for name, per_budget in results.items():
        lines.append(f"--- {name}")
        for budget, result in per_budget.items():
            best = result.best
            if best is None:
                lines.append(f"    budget {budget:5d}: no viable chains")
                continue
            chains = ", ".join(best.labels())
            lines.append(
                f"    budget {budget:5d}: {best.speedup:5.3f}x using "
                f"area {best.area:5d}  [{chains}]")
    save_artifact("asip_exploration.txt", "\n".join(lines))

    for name, per_budget in results.items():
        speedups = [per_budget[b].best.speedup if per_budget[b].best
                    else 1.0 for b in BUDGETS]
        assert speedups[-1] >= 1.05, \
            f"{name}: a generous budget must buy real speedup"
        assert all(b >= a - 1e-9
                   for a, b in zip(speedups, speedups[1:])), \
            f"{name}: best speedup must not decrease with budget " \
            f"({speedups})"
