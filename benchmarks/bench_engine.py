"""Engine micro-benchmarks: throughput of the toolchain's hot stages.

These are performance benchmarks for the reproduction's own machinery
(front end, simulator, percolation, detector) on a mid-sized benchmark —
the numbers a contributor watches for regressions.
"""

import pytest

from repro.cfg.build import build_module_graphs
from repro.chaining.detect import detect_sequences
from repro.frontend import compile_source
from repro.opt.pipeline import OptLevel, optimize_module
from repro.opt.percolation import compact_graph
from repro.sim.machine import run_module, run_module_batch
from repro.suite.registry import get_benchmark
from repro.suite.runner import compile_benchmark


@pytest.fixture(scope="module")
def edge_spec():
    return get_benchmark("edge")


@pytest.fixture(scope="module")
def edge_module(edge_spec):
    return compile_benchmark(edge_spec)


@pytest.fixture(scope="module")
def edge_level1(edge_module, edge_spec):
    gm, _ = optimize_module(edge_module, OptLevel.PIPELINED)
    result = run_module(gm, edge_spec.generate_inputs(0))
    return gm, result


def test_frontend_throughput(benchmark, edge_spec):
    module = benchmark(compile_source, edge_spec.source, "edge")
    assert module.total_instructions() > 100


def test_graph_build_throughput(benchmark, edge_module):
    gm = benchmark(build_module_graphs, edge_module)
    assert gm.total_nodes() > 100


def test_compaction_throughput(benchmark, edge_module):
    def compact_fresh():
        gm = build_module_graphs(edge_module)
        for g in gm.graphs.values():
            compact_graph(g)
        return gm

    gm = benchmark(compact_fresh)
    assert any(len(n.ops) > 1 for g in gm.graphs.values()
               for n in g.nodes.values())


def test_simulator_throughput(benchmark, edge_module, edge_spec):
    """Reference interpreter baseline (the pre-engine hot path)."""
    gm = build_module_graphs(edge_module)
    inputs = edge_spec.generate_inputs(0)
    result = benchmark(run_module, gm, inputs, engine="reference")
    assert result.cycles > 10_000


def test_simulator_throughput_compiled(benchmark, edge_module, edge_spec):
    """Compiled engine on the same workload; the ratio against
    ``test_simulator_throughput`` is the engine speedup (target >= 3x)."""
    gm = build_module_graphs(edge_module)
    inputs = edge_spec.generate_inputs(0)
    # compile once outside the timed region (engine pinned so the
    # numbers are stable under any REPRO_ENGINE)
    run_module(gm, inputs, engine="compiled")
    result = benchmark(run_module, gm, inputs, engine="compiled")
    assert result.cycles > 10_000


def test_simulator_throughput_bytecode(benchmark, edge_module, edge_spec):
    """Bytecode engine on the same workload; the ratio against
    ``test_simulator_throughput_compiled`` is the tier-3 speedup
    (target >= 1.5x)."""
    gm = build_module_graphs(edge_module)
    inputs = edge_spec.generate_inputs(0)
    run_module(gm, inputs, engine="bytecode")  # lower once outside timing
    result = benchmark(run_module, gm, inputs, engine="bytecode")
    assert result.cycles > 10_000


def test_simulator_throughput_codegen(benchmark, edge_module, edge_spec):
    """Codegen engine on the same workload; the ratio against
    ``test_simulator_throughput_bytecode`` is the tier-4 speedup
    (target >= 1.5x)."""
    gm = build_module_graphs(edge_module)
    inputs = edge_spec.generate_inputs(0)
    run_module(gm, inputs, engine="codegen")  # generate once outside
    result = benchmark(run_module, gm, inputs, engine="codegen")
    assert result.cycles > 10_000


#: The acceptance pairs: per-benchmark, per-level columns in the bench
#: JSON so the >= 1.5x tier-over-tier simulator speedups are recorded at
#: every optimization level, not just the sequential graphs.
SIM_BENCHES = ("edge", "sewha")
SIM_LEVELS = (0, 1, 2)


def _optimized(name, level):
    spec = get_benchmark(name)
    gm, _ = optimize_module(compile_benchmark(spec), OptLevel(level))
    return gm, spec.generate_inputs(0)


@pytest.mark.parametrize("name", SIM_BENCHES)
def test_sim_compiled(benchmark, name):
    gm, inputs = _optimized(name, 0)
    run_module(gm, inputs, engine="compiled")
    result = benchmark(run_module, gm, inputs, engine="compiled")
    assert result.cycles > 1_000


@pytest.mark.parametrize("level", SIM_LEVELS)
@pytest.mark.parametrize("name", SIM_BENCHES)
def test_sim_bytecode(benchmark, name, level):
    """Paired with ``test_sim_codegen[name-level]``: the bytecode/codegen
    ratio per cell is the recorded tier-4 speedup."""
    gm, inputs = _optimized(name, level)
    run_module(gm, inputs, engine="bytecode")
    result = benchmark(run_module, gm, inputs, engine="bytecode")
    assert result.cycles > 500


@pytest.mark.parametrize("level", SIM_LEVELS)
@pytest.mark.parametrize("name", SIM_BENCHES)
def test_sim_codegen(benchmark, name, level):
    """The tier-4 acceptance leg: >= 1.5x over the matching
    ``test_sim_bytecode[name-level]`` on edge/sewha at levels 0-2."""
    gm, inputs = _optimized(name, level)
    run_module(gm, inputs, engine="codegen")
    result = benchmark(run_module, gm, inputs, engine="codegen")
    assert result.cycles > 500


#: Batch width for the lane-vs-per-seed legs — the smallest batch the
#: auto-upgrade reroutes to the lane tier (``LANE_SHARD_MIN``), i.e. the
#: least favorable many-seed shape for lanes.
BATCH_SEEDS = tuple(range(8))


def _batch_cell(name, level):
    spec = get_benchmark(name)
    gm, _ = optimize_module(compile_benchmark(spec), OptLevel(level))
    return gm, [spec.generate_inputs(s) for s in BATCH_SEEDS]


@pytest.mark.parametrize("level", SIM_LEVELS)
@pytest.mark.parametrize("name", SIM_BENCHES)
def test_sim_batch_codegen(benchmark, name, level):
    """Eight seeds as eight per-seed codegen runs through one batch: the
    denominator of the lane speedup (paired with
    ``test_sim_batch_lanes[name-level]``)."""
    gm, inputs_list = _batch_cell(name, level)
    run_module_batch(gm, inputs_list, engine="codegen")  # generate once
    results = benchmark(run_module_batch, gm, inputs_list,
                        engine="codegen")
    assert len(results) == len(BATCH_SEEDS)


@pytest.mark.parametrize("level", SIM_LEVELS)
@pytest.mark.parametrize("name", SIM_BENCHES)
def test_sim_batch_lanes(benchmark, name, level):
    """The tier-5 acceptance leg: the same eight seeds in one
    lane-parallel pass, target >= 2x over the matching
    ``test_sim_batch_codegen[name-level]`` (recorded in
    ``benchmarks/results/bench_lanes.json``)."""
    gm, inputs_list = _batch_cell(name, level)
    run_module_batch(gm, inputs_list, engine="lanes")  # generate once
    results = benchmark(run_module_batch, gm, inputs_list, engine="lanes")
    assert len(results) == len(BATCH_SEEDS)


#: Load-heavy kernels where the range analysis proves the most bounds
#: guards away — the guard-elimination acceptance legs.  Each
#: ``ranges_off`` leg is the denominator of the speedup recorded by the
#: matching ``ranges_on`` leg.
GUARD_ELIM_BENCHES = ("fir", "iir", "smooth")


def _guard_elim_cell(name):
    spec = get_benchmark(name)
    gm, _ = optimize_module(compile_benchmark(spec), OptLevel(2))
    return gm, spec.generate_inputs(0)


@pytest.mark.parametrize("name", GUARD_ELIM_BENCHES)
def test_sim_codegen_ranges_off(benchmark, name, monkeypatch):
    """Fully guarded codegen run (REPRO_RANGES=0): every subscripted
    load keeps its bounds check."""
    monkeypatch.setenv("REPRO_RANGES", "0")
    gm, inputs = _guard_elim_cell(name)
    run_module(gm, inputs, engine="codegen")  # generate once outside
    result = benchmark(run_module, gm, inputs, engine="codegen")
    assert result.cycles > 500


@pytest.mark.parametrize("name", GUARD_ELIM_BENCHES)
def test_sim_codegen_ranges_on(benchmark, name, monkeypatch):
    """Guard-eliminated codegen run: SAFE-proved loads go out
    unguarded under a verified certificate.  The ratio against
    ``test_sim_codegen_ranges_off[name]`` is the recorded win."""
    monkeypatch.delenv("REPRO_RANGES", raising=False)
    gm, inputs = _guard_elim_cell(name)
    from repro.sim.codegen import generate_module
    assert generate_module(gm).bounds is not None  # elision active
    run_module(gm, inputs, engine="codegen")
    result = benchmark(run_module, gm, inputs, engine="codegen")
    assert result.cycles > 500


def test_simulator_compile_cost(benchmark, edge_module):
    """Cost of one cold compilation (paid once per module thanks to the
    on-module cache)."""
    from repro.sim.engine import CompiledModule

    gm = build_module_graphs(edge_module)
    compiled = benchmark(CompiledModule, gm)
    assert compiled.graphs


def test_simulator_lowering_cost(benchmark, edge_module):
    """Cost of one cold bytecode lowering (cached like the compiled
    form, stripped and rebuilt per worker at pickle boundaries)."""
    from repro.sim.engine import LoweredModule

    gm = build_module_graphs(edge_module)
    lowered = benchmark(LoweredModule, gm)
    assert lowered.graphs


def test_simulator_codegen_cost(benchmark, edge_module):
    """Cost of one cold source generation + exec-compile (cached under
    the same structural signature as the other compiled forms)."""
    from repro.sim.codegen import GeneratedModule

    gm = build_module_graphs(edge_module)
    generated = benchmark(GeneratedModule, gm)
    assert generated.fns


def test_simulator_lanegen_cost(benchmark, edge_module):
    """Cost of one cold lane-module generation at width 8 (cached per
    width, in memory and on disk, so a study pays it once per cell)."""
    from repro.sim.lanes import LaneModule

    gm = build_module_graphs(edge_module)
    lanes = benchmark(LaneModule, gm, 8)
    assert lanes.fns


def _explore_edge(edge_module, edge_spec, engine):
    from repro.asip.explore import explore_designs

    result = explore_designs(edge_module, edge_spec.generate_inputs(0),
                             area_budget=2500, engine=engine)
    assert result.measured
    return result


def test_exploration_end_to_end(benchmark, edge_module, edge_spec):
    """Full design-space exploration on the compiled engine (cached base
    simulation + compilation reuse across finalists)."""
    result = benchmark.pedantic(
        _explore_edge, args=(edge_module, edge_spec, "compiled"),
        rounds=3, iterations=1, warmup_rounds=1)
    assert result.best is not None


def test_exploration_end_to_end_reference(benchmark, edge_module, edge_spec):
    """Same exploration on the reference interpreter, for the ratio."""
    result = benchmark.pedantic(
        _explore_edge, args=(edge_module, edge_spec, "reference"),
        rounds=2, iterations=1)
    assert result.best is not None


def test_exploration_end_to_end_bytecode(benchmark, edge_module, edge_spec):
    """Same exploration on the bytecode tier (shared base simulation +
    lowered-form reuse across finalists)."""
    result = benchmark.pedantic(
        _explore_edge, args=(edge_module, edge_spec, "bytecode"),
        rounds=3, iterations=1, warmup_rounds=1)
    assert result.best is not None


def test_exploration_end_to_end_codegen(benchmark, edge_module, edge_spec):
    """Same exploration on the codegen tier (shared base simulation +
    generated-source reuse across finalists)."""
    result = benchmark.pedantic(
        _explore_edge, args=(edge_module, edge_spec, "codegen"),
        rounds=3, iterations=1, warmup_rounds=1)
    assert result.best is not None


def test_detector_throughput(benchmark, edge_level1):
    gm, result = edge_level1
    detection = benchmark(detect_sequences, gm, result.profile,
                          (2, 3, 4, 5))
    assert detection.stats.occurrences_found > 0
