"""Shared machinery for the benchmark harness.

Every ``bench_*.py`` file regenerates one artifact of the paper (a table or
figure) or one extension/ablation experiment.  The expensive part — the
full 12-benchmark x 3-level study — runs once per session; each benchmark
then times the *analysis* step that produces its artifact and writes the
rendered artifact under ``benchmarks/artifacts/`` so EXPERIMENTS.md can
reference concrete outputs.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.feedback.study import StudyConfig, run_study

ARTIFACT_DIR = pathlib.Path(__file__).resolve().parent / "artifacts"


@pytest.fixture(scope="session")
def full_study():
    """The complete experimental matrix (all 12 benchmarks, levels 0-2)."""
    return run_study(StudyConfig())


@pytest.fixture(scope="session")
def artifact_dir():
    ARTIFACT_DIR.mkdir(exist_ok=True)
    return ARTIFACT_DIR


@pytest.fixture()
def save_artifact(artifact_dir):
    """Write an artifact file and echo it to the captured output."""

    def _save(name: str, text: str):
        path = artifact_dir / name
        path.write_text(text + "\n")
        print()
        print(text)
        return path

    return _save
