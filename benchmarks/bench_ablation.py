"""Ablation experiment X3: which part of "full optimization" exposes the
sequences?

Decomposes level 1 into its ingredients on a fast subset of the suite:

* cleanups only (no motion at all);
* cleanups + percolation scheduling (no loop pipelining);
* cleanups + loop pipelining + percolation — the paper's level 1;
* level 2 (adds register renaming).

Also ablates the front end's strength-reduction aggressiveness (DESIGN.md
design choice): two-term shift/add decomposition removes integer
multiplies and with them the multiply-add sequences.

Expected shape (measured, and a finding of this reproduction): percolation
is the big lever on control-rich kernels (fir, iir, edge — guards and
multi-block loop bodies); loop pipelining adds cross-iteration sequences on
top where iterations are not one long recurrence (iir, smooth); on pure
address-arithmetic kernels, invariant-code motion can *reduce* detected
frequency by hoisting multiplies out of loops entirely — motion is not
uniformly favourable, which is precisely why the paper puts the compiler in
the loop instead of guessing.  Renaming never increases detection.
"""

from repro.chaining.detect import detect_sequences
from repro.lowering.lower import strength_reduction_terms
from repro.opt.pipeline import OptLevel, optimize_module
from repro.sim.machine import run_module
from repro.suite.registry import get_benchmark
from repro.suite.runner import compile_benchmark

BENCHES = ("fir", "iir", "smooth", "edge", "sewha", "feowf")

ARMS = (
    ("cleanups only", dict(level=1, enable_pipelining=False,
                           enable_compaction=False)),
    ("percolation only", dict(level=1, enable_pipelining=False)),
    ("pipelining + percolation", dict(level=1)),
    ("level 2 (renamed)", dict(level=2)),
)


def _total_detected(name, arm_kwargs):
    spec = get_benchmark(name)
    module = compile_benchmark(spec)
    kwargs = dict(arm_kwargs)
    level = kwargs.pop("level")
    gm, _ = optimize_module(module, OptLevel(level), **kwargs)
    result = run_module(gm, spec.generate_inputs(0))
    detection = detect_sequences(gm, result.profile, (2, 3))
    return sum(freq for _, freq in detection.top(2)) + \
        sum(freq for _, freq in detection.top(3))


def _run_ablation():
    table = {}
    for name in BENCHES:
        table[name] = {label: _total_detected(name, kwargs)
                       for label, kwargs in ARMS}
    return table


def test_optimization_ablation(benchmark, save_artifact):
    table = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)

    lines = ["Ablation: total detected frequency (lengths 2+3, %)", ""]
    header = f"{'benchmark':10s}" + "".join(
        f"{label:>28s}" for label, _ in ARMS)
    lines.append(header)
    for name, row in table.items():
        lines.append(f"{name:10s}" + "".join(
            f"{row[label]:28.2f}" for label, _ in ARMS))
    save_artifact("ablation_optimization.txt", "\n".join(lines))

    big_percolation_wins = sum(
        1 for row in table.values()
        if row["percolation only"] > row["cleanups only"] + 20.0)
    assert big_percolation_wins >= 3, \
        "percolation must be a large lever on control-rich kernels"
    pipelining_adds = sum(
        1 for row in table.values()
        if row["pipelining + percolation"] >
        row["percolation only"] + 2.0)
    assert pipelining_adds >= 1, \
        "loop pipelining must add cross-iteration sequences somewhere"
    for name, row in table.items():
        assert row["level 2 (renamed)"] <= \
            row["pipelining + percolation"] + 1e-9, \
            f"{name}: renaming must not increase detection"


def test_strength_reduction_ablation(benchmark, save_artifact):
    def run_both():
        out = {}
        for terms in (1, 2):
            with strength_reduction_terms(terms):
                spec = get_benchmark("sewha")
                module = compile_benchmark(spec)
            gm, _ = optimize_module(module, OptLevel.PIPELINED)
            result = run_module(gm, spec.generate_inputs(0))
            detection = detect_sequences(gm, result.profile, (2,))
            out[terms] = {
                "multiply-add": detection.frequency(("multiply", "add")),
                "shift-add": detection.frequency(("shift", "add")),
            }
        return out

    table = benchmark.pedantic(run_both, rounds=1, iterations=1)
    lines = ["Ablation: strength reduction vs detected sequences (sewha)",
             "",
             f"{'setting':>22s} {'multiply-add':>14s} {'shift-add':>12s}"]
    for terms, row in table.items():
        label = "powers of two" if terms == 1 else "two-term shifts"
        lines.append(f"{label:>22s} {row['multiply-add']:13.2f}% "
                     f"{row['shift-add']:11.2f}%")
    save_artifact("ablation_strength_reduction.txt", "\n".join(lines))

    assert table[1]["multiply-add"] > 0, \
        "power-of-two-only keeps the coefficient multiplies"
    assert table[2]["multiply-add"] == 0.0, \
        "two-term reduction removes every integer multiply in sewha"
    assert table[2]["shift-add"] > table[1]["shift-add"], \
        "aggressive reduction trades multiplies for shift-add chains"
