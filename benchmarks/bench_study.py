"""Study-level performance benchmarks: serial vs parallel vs batched.

The engine benchmarks (``bench_engine.py``) watch single-simulation
throughput; this file watches the *study* — the full benchmark×level
matrix behind every table, figure and report.  Three execution shapes
are timed on the default matrix (12 benchmarks × levels 0/1/2):

* **serial** — ``run_study(jobs=1)``, the PR-1 baseline path;
* **parallel** — ``run_study(jobs=4)``, the exec scheduler fanning the
  matrix over a process pool (level 0 first per benchmark, then levels
  1/2).  On a >= 4-core machine the target is a >= 2x wall-time win over
  serial; on fewer cores the pool only adds overhead, so the ratio is
  reported rather than asserted (see ``available_cpus``);
* **batched** — multi-seed runs through ``run_module_batch``, which
  compiles each cell once for all seeds, against the same seeds run as
  independent single-seed cells.

Run with ``--benchmark-json=bench_study.json`` (as CI does) to emit the
same JSON shape as ``bench_engine.json`` for the perf trajectory.
"""

import pytest

from repro.exec.pool import available_cpus
from repro.feedback.study import StudyConfig, run_study
from repro.opt.pipeline import OptLevel
from repro.suite.registry import get_benchmark
from repro.suite.runner import run_benchmark

SEEDS = (0, 1, 2, 3, 4)


def _assert_full_matrix(study):
    assert len(study.benchmarks) == 12
    for name in study.names():
        assert set(study.benchmark(name).runs) == \
            {OptLevel(level) for level in (0, 1, 2)}


def test_study_serial(benchmark):
    """The serial baseline: the denominator of the parallel speedup."""
    study = benchmark.pedantic(run_study, args=(StudyConfig(jobs=1),),
                               rounds=3, iterations=1)
    _assert_full_matrix(study)


def test_study_serial_bytecode(benchmark):
    """The full matrix on the bytecode engine tier; the ratio against
    ``test_study_serial`` is the study-level engine win."""
    study = benchmark.pedantic(
        run_study, args=(StudyConfig(jobs=1, engine="bytecode"),),
        rounds=3, iterations=1)
    _assert_full_matrix(study)


def test_small_studies_repeated_parallel(benchmark):
    """Back-to-back small parallel studies: the shape where process-pool
    spin-up used to dominate.  The persistent pool pays it once."""
    if available_cpus() < 2:
        pytest.skip("single-CPU machine: a process pool cannot win")
    config = StudyConfig(benchmarks=("fir", "iir"), jobs=2)

    def three_studies():
        run_study(config)
        run_study(config)
        return run_study(config)

    study = benchmark.pedantic(three_studies, rounds=3, iterations=1)
    assert set(study.names()) == {"fir", "iir"}


def test_study_parallel_jobs4(benchmark):
    """The full matrix on 4 workers (target: >= 2x over serial when the
    hardware has the cores; ratio against ``test_study_serial``)."""
    if available_cpus() < 2:
        pytest.skip("single-CPU machine: a process pool cannot win")
    study = benchmark.pedantic(run_study, args=(StudyConfig(jobs=4),),
                               rounds=3, iterations=1)
    _assert_full_matrix(study)


def test_study_multiseed_batched(benchmark):
    """Five seeds per cell, batched: one compile per cell for all seeds."""
    study = benchmark.pedantic(
        run_study, args=(StudyConfig(seeds=SEEDS),),
        rounds=2, iterations=1)
    _assert_full_matrix(study)
    run = study.benchmark("edge").run_at(1)
    assert run.seeds == SEEDS and len(run.seed_results) == len(SEEDS)


#: Past :data:`repro.sim.machine.LANE_SHARD_MIN` seeds the batch path
#: auto-upgrades to the lane engine — one generated pass for all seeds.
LANE_SEEDS = tuple(range(8))


def test_cell_multiseed_lanes(benchmark):
    """One cell (edge @ level 1), eight seeds through one lane-parallel
    pass; ratio against a pro-rated ``test_cell_multiseed_batched`` is
    the study-level lane win."""
    spec = get_benchmark("edge")
    run = benchmark.pedantic(
        run_benchmark, args=(spec, OptLevel.PIPELINED),
        kwargs={"seeds": LANE_SEEDS}, rounds=3, iterations=1)
    assert run.seeds == LANE_SEEDS
    assert len({r.cycles for r in run.seed_results}) > 1


def _unbatched_multiseed(spec):
    return [run_benchmark(spec, OptLevel.PIPELINED, seed=seed)
            for seed in SEEDS]


def test_cell_multiseed_batched(benchmark):
    """One cell (edge @ level 1), five seeds through one compiled
    program; ratio against ``test_cell_multiseed_unbatched`` is the
    batching win."""
    spec = get_benchmark("edge")
    run = benchmark.pedantic(
        run_benchmark, args=(spec, OptLevel.PIPELINED),
        kwargs={"seeds": SEEDS}, rounds=3, iterations=1)
    assert run.seeds == SEEDS
    assert len({r.cycles for r in run.seed_results}) > 1


def test_cell_multiseed_unbatched(benchmark):
    """The same five seeds as five independent full cells (front end,
    optimizer and graph compilation re-paid per seed)."""
    spec = get_benchmark("edge")
    runs = benchmark.pedantic(_unbatched_multiseed, args=(spec,),
                              rounds=3, iterations=1)
    assert len(runs) == len(SEEDS)


def test_batched_equals_unbatched():
    """Correctness guard riding along with the perf numbers: the batched
    cell is bit-identical to the independent runs it replaces."""
    spec = get_benchmark("edge")
    batched = run_benchmark(spec, OptLevel.PIPELINED, seeds=SEEDS)
    for seed, result in zip(SEEDS, batched.seed_results):
        single = run_benchmark(spec, OptLevel.PIPELINED, seed=seed)
        assert result.cycles == single.cycles
        assert result.return_value == single.machine_result.return_value
        assert result.globals_after == single.machine_result.globals_after
        assert result.profile == single.profile
