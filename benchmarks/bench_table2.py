"""Regenerate paper Table 2: example sequence frequencies (multiply-add,
add-multiply, add-add, add-multiply-add, multiply-add-add) at the three
optimization levels, combined across the suite.

Expected shape (paper Table 2): add-multiply and add-add barely exist in
the sequential code and appear strongly after pipelining ("the majority of
these sequences were found in loops which had been pipelined"); renaming
(level 2) reduces the motion-exposed sequences relative to level 1.
"""

from repro.reporting.tables import TABLE2_SEQUENCES, table2


def _frequencies(study):
    return {
        name: {level: study.combined(level).frequency(name)
               for level in (0, 1, 2)}
        for name in TABLE2_SEQUENCES
    }


def test_table2(benchmark, full_study, save_artifact):
    freqs = benchmark(_frequencies, full_study)
    save_artifact("table2.txt", table2(full_study))

    add_multiply = freqs[("add", "multiply")]
    assert add_multiply[1] > 3 * max(add_multiply[0], 0.1), \
        "add-multiply must be exposed by pipelining (paper: 2.25 -> 13.78)"
    add_add = freqs[("add", "add")]
    assert add_add[1] > add_add[0], \
        "add-add must rise with optimization (paper: 7.64 -> 10.15)"
    assert add_multiply[2] < add_multiply[1], \
        "renaming must reduce add-multiply (paper: 13.78 -> 9.06)"
    multiply_add = freqs[("multiply", "add")]
    assert multiply_add[0] > 1.0, \
        "multiply-add (the MAC) must be prominent even unoptimized"
    ama = freqs[("add", "multiply", "add")]
    assert ama[1] > ama[0], \
        "add-multiply-add must rise with optimization (paper: 3.38->7.42)"
