"""Verifier-overhead benchmarks: the warm study with the gate on/off.

PR 8's acceptance bar: turning ``REPRO_VERIFY=1`` on must cost a warm
``repro study`` under 5%.  Three shapes pin that down:

* **the warm study, gate off** — a four-benchmark ``run_study`` on the
  codegen tier with every compile artifact already on disk (the
  denominator);
* **the warm study, gate on** — the identical study with verify-on-load
  active, so every served payload passes the full static check
  (word layouts, edge/counter tables, generated-source AST invariants)
  before reconstruction.  The ratio to the leg above is the headline
  overhead number;
* **the verification sweep itself** — one benchmark through all five
  tiers of ``repro verify``, watching the absolute cost of the checks
  in isolation (no simulation at all).

Run with ``--benchmark-json=bench_verify.json`` (as CI does); the
headline numbers are recorded in ``benchmarks/results/bench_verify.json``.
"""

import pytest

from repro.analysis.sweep import run_sweep
from repro.feedback.study import StudyConfig, run_study
from repro.sim import diskcache

BENCHMARKS = ("edge", "sewha", "fir", "iir")
CONFIG = StudyConfig(benchmarks=BENCHMARKS, engine="codegen", jobs=1)


def _assert_study(study):
    assert study.names() == list(BENCHMARKS)
    cache = diskcache.get_cache()
    assert cache.hits["codegen"] > 0  # warm: generation served from disk
    assert not cache.rejected  # nothing tripped the gate


@pytest.fixture()
def warm_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(diskcache.CACHE_ENV_VAR, str(tmp_path))
    monkeypatch.delenv(diskcache.VERIFY_ENV_VAR, raising=False)
    diskcache.reset_cache_state()
    run_study(CONFIG)  # prime every artifact of the matrix
    yield
    diskcache.reset_cache_state()


def test_warm_study_gate_off(benchmark, warm_cache):
    """The denominator: a warm study with verify-on-load inactive."""
    study = benchmark.pedantic(run_study, args=(CONFIG,),
                               rounds=3, iterations=1, warmup_rounds=1)
    _assert_study(study)


def test_warm_study_gate_on(benchmark, warm_cache, monkeypatch):
    """The same warm study with every cache load statically verified.
    The warmup round pays the one-per-digest check; the measured
    rounds see the memoized steady state — the ratio to ``gate_off``
    is the overhead the README quotes."""
    monkeypatch.setenv(diskcache.VERIFY_ENV_VAR, "1")
    study = benchmark.pedantic(run_study, args=(CONFIG,),
                               rounds=3, iterations=1, warmup_rounds=1)
    _assert_study(study)


def test_verify_sweep_single_benchmark(benchmark, warm_cache):
    """The static checks in isolation: one benchmark, levels 0-2, all
    five tiers — no simulation, just lowering + verification."""
    report = benchmark.pedantic(
        run_sweep, kwargs={"benchmarks": ("edge",)},
        rounds=3, iterations=1)
    assert report.ok
    assert sum(cell.checks for cell in report.cells) > 0
